//! The async job tier: enqueue → schedule → execute → store.
//!
//! Heavy requests (`/campaign`, `/montecarlo`, deep `/evaluate`) can be
//! submitted as *jobs* instead of being computed inline on the HTTP
//! worker that accepted them. This module owns the three pieces the
//! serving layer threads together:
//!
//! - [`JobQueue`] — a bounded, priority-by-cost-class FIFO with
//!   per-client admission counters. Lighter cost classes are always
//!   drained first so a burst of campaign sweeps cannot starve cheap
//!   evaluate jobs, and no single client can occupy the whole queue.
//! - [`JobStore`] — a sharded bounded map of [`JobRecord`]s with
//!   oldest-done eviction: terminal records (done/failed/cancelled) are
//!   evicted oldest-first when the store is full; queued and running
//!   jobs are never evicted.
//! - The job-id scheme: ids are 64-bit with the owning backend's
//!   logical node index in the high [`NODE_BITS`] bits, so the router
//!   can route `GET /jobs/{id}` straight to the backend that owns the
//!   record without any shared state.
//!
//! Execution itself lives in the service layer (`api::execute_job`):
//! compute workers — a pool separate from the HTTP accept pool — pop
//! specs from the queue, run them through the *same* prepare/execute
//! path as the synchronous endpoints, and park the result payload back
//! in the store, so job results are byte-identical to their
//! synchronous twins and share the memo/compile caches.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Bits of the job id reserved for the owning backend's node index.
pub const NODE_BITS: u32 = 8;

/// Mask selecting the sequence part of a job id.
pub const SEQ_MASK: u64 = (1 << (64 - NODE_BITS)) - 1;

/// Packs a backend node index and a local sequence number into a job id.
#[must_use]
pub fn encode_job_id(node: u64, seq: u64) -> u64 {
    ((node & ((1 << NODE_BITS) - 1)) << (64 - NODE_BITS)) | (seq & SEQ_MASK)
}

/// The backend node index encoded in a job id's high bits.
#[must_use]
pub fn job_node(id: u64) -> u64 {
    id >> (64 - NODE_BITS)
}

/// Renders a job id as its wire form: 16 lowercase hex digits.
#[must_use]
pub fn format_job_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parses the wire form produced by [`format_job_id`]. Strict: exactly
/// 16 hex digits, so path fragments never alias.
#[must_use]
pub fn parse_job_id(s: &str) -> Option<u64> {
    if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// Scheduling priority, cheapest first. The queue drains strictly by
/// class (FIFO within a class), so interactive-sized work never waits
/// behind a campaign sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum CostClass {
    /// Single-instance evaluation.
    Light = 0,
    /// Monte-Carlo estimation (samples × fleet work).
    Medium = 1,
    /// Full campaign sweeps.
    Heavy = 2,
}

/// Number of cost classes (one FIFO each).
pub const COST_CLASS_COUNT: usize = 3;

impl CostClass {
    /// The class a job endpoint schedules under.
    #[must_use]
    pub fn for_endpoint(endpoint: &str) -> CostClass {
        match endpoint {
            "campaign" => CostClass::Heavy,
            "montecarlo" => CostClass::Medium,
            _ => CostClass::Light,
        }
    }

    /// The snake_case label used in job JSON.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CostClass::Light => "light",
            CostClass::Medium => "medium",
            CostClass::Heavy => "heavy",
        }
    }
}

/// Lifecycle state of a job record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and waiting in the queue.
    Queued,
    /// Picked up by a compute worker.
    Running,
    /// Finished successfully; the result payload is in the record.
    Done,
    /// Finished with an error; status and message are in the record.
    Failed,
    /// Cancelled while still queued.
    Cancelled,
}

impl JobState {
    /// The snake_case label used in job JSON.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the state is final (done, failed or cancelled).
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// What a submitted job will execute: the endpoint tag plus the
/// original JSON body (which is exactly the synchronous endpoint's
/// payload, so execution re-enters the same parse/validate path).
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Synchronous-endpoint tag: `evaluate`, `montecarlo` or `campaign`.
    pub endpoint: String,
    /// The submit body, replayed through the endpoint's own parser.
    pub body: String,
    /// Admission bucket (defaults to `anon` at the API layer).
    pub client: String,
    /// Scheduling class.
    pub class: CostClass,
}

/// A job's execution outcome: the pre-wrap result payload plus the
/// cache flag on success, or the would-be HTTP status and error
/// message on failure.
pub type JobOutcome = Result<(String, bool), (u16, String)>;

/// One stored job: identity, lifecycle state, tick timeline and (once
/// terminal) the outcome.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Job id (node index in the high bits).
    pub id: u64,
    /// Current lifecycle state.
    pub state: JobState,
    /// Endpoint tag from the spec.
    pub endpoint: String,
    /// Admission bucket from the spec.
    pub client: String,
    /// Scheduling class from the spec.
    pub class: CostClass,
    /// Store-relative tick (µs) when the job was accepted.
    pub submitted_micros: u64,
    /// Tick when a worker started it (0 while queued).
    pub started_micros: u64,
    /// Tick when it reached a terminal state (0 before that).
    pub finished_micros: u64,
    /// The outcome, present once the state is `Done` or `Failed`.
    pub result: Option<JobOutcome>,
    /// The body a worker replays (cleared once executed).
    pub body: String,
}

impl JobRecord {
    /// Microseconds the job spent queued (started − submitted); for
    /// jobs that are still queued, the wait so far is unknown to the
    /// record and reported as 0.
    #[must_use]
    pub fn queue_wait_micros(&self) -> u64 {
        self.started_micros.saturating_sub(self.submitted_micros)
    }
}

/// Admission/queue configuration for a [`JobQueue`].
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Maximum jobs queued (all classes together).
    pub queue_depth: usize,
    /// Maximum stored records (queued + running + terminal).
    pub store_capacity: usize,
    /// Maximum in-flight (queued or running) jobs per client.
    pub max_per_client: usize,
    /// Minimum `k·m·(f+2)` work for an `evaluate` job; cheaper
    /// evaluations are redirected to the synchronous endpoint.
    pub cost_threshold: u64,
    /// This backend's logical node index (encoded into job ids).
    pub node: u64,
    /// Compute-worker pool size.
    pub workers: usize,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            queue_depth: 64,
            store_capacity: 256,
            max_per_client: 16,
            cost_threshold: 1 << 16,
            node: 0,
            workers: 2,
        }
    }
}

/// Why a submission was refused admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue (or the store) is at capacity.
    QueueFull,
    /// The client already has `max_per_client` jobs in flight.
    ClientLimit,
    /// The queue has been closed for shutdown.
    Closed,
}

/// Why a cancellation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CancelError {
    /// No record under that id.
    NotFound,
    /// The job is no longer queued; carries the state it was in.
    NotCancellable(JobState),
}

/// Monotonic counters and gauges for `/stats` and `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobsSnapshot {
    /// Jobs currently queued.
    pub queued: u64,
    /// Jobs currently executing on a compute worker.
    pub running: u64,
    /// Records currently stored (any state).
    pub stored: u64,
    /// Jobs ever admitted.
    pub submitted: u64,
    /// Jobs finished successfully.
    pub completed: u64,
    /// Jobs finished with an error.
    pub failed: u64,
    /// Jobs cancelled while queued.
    pub cancelled: u64,
    /// Submissions refused admission (queue full or client limit).
    pub rejected: u64,
    /// Terminal records evicted to make room.
    pub evicted: u64,
}

const STORE_SHARDS: usize = 8;

#[derive(Debug, Default)]
struct Shard {
    map: Mutex<HashMap<u64, JobRecord>>,
    cond: Condvar,
}

#[derive(Debug, Default)]
struct QueueInner {
    classes: [VecDeque<u64>; COST_CLASS_COUNT],
    len: usize,
    per_client: HashMap<String, usize>,
}

/// The job subsystem: bounded admission queue plus sharded record
/// store, shared between the HTTP pool (submit/poll/cancel) and the
/// compute pool (pop/execute/finish).
///
/// `JobQueue` is the admission-facing name; the record store rides
/// inside (see [`JobStore`] for the alias used in prose).
#[derive(Debug)]
pub struct JobQueue {
    cfg: JobConfig,
    started: Instant,
    seq: AtomicU64,
    shards: Vec<Shard>,
    queue: Mutex<QueueInner>,
    queue_cond: Condvar,
    closed: AtomicBool,
    stored: AtomicU64,
    queued: AtomicU64,
    running: AtomicU64,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    rejected: AtomicU64,
    evicted: AtomicU64,
}

/// Alias naming the store half of [`JobQueue`]: the sharded bounded
/// record map with oldest-done eviction lives behind the same handle.
pub type JobStore = JobQueue;

impl JobQueue {
    /// A fresh queue + store under `cfg`.
    #[must_use]
    pub fn new(cfg: JobConfig) -> JobQueue {
        JobQueue {
            cfg,
            started: Instant::now(),
            seq: AtomicU64::new(0),
            shards: (0..STORE_SHARDS).map(|_| Shard::default()).collect(),
            queue: Mutex::new(QueueInner::default()),
            queue_cond: Condvar::new(),
            closed: AtomicBool::new(false),
            stored: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            running: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// The configuration this queue runs under.
    #[must_use]
    pub fn config(&self) -> &JobConfig {
        &self.cfg
    }

    fn tick(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    fn shard(&self, id: u64) -> &Shard {
        &self.shards[(id as usize) % self.shards.len()]
    }

    fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Evicts the terminal record with the smallest finished tick.
    /// Returns false when every stored record is still live.
    fn evict_oldest_done(&self) -> bool {
        let mut oldest: Option<(u64, u64)> = None; // (finished, id)
        for shard in &self.shards {
            let map = Self::lock(&shard.map);
            for rec in map.values() {
                if !rec.state.is_terminal() {
                    continue;
                }
                let candidate = (rec.finished_micros, rec.id);
                if oldest.is_none_or(|o| candidate < o) {
                    oldest = Some(candidate);
                }
            }
        }
        let Some((_, id)) = oldest else { return false };
        if self.shard(id).map_remove(id) {
            self.stored.fetch_sub(1, Ordering::Relaxed);
            self.evicted.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Admits a job: bounds the queue, enforces the per-client limit,
    /// mints the id, stores the record and enqueues it.
    ///
    /// # Errors
    ///
    /// [`SubmitError`] when admission is refused; the caller maps it to
    /// a shed response (503 + `Retry-After`).
    pub fn submit(&self, spec: JobSpec) -> Result<u64, SubmitError> {
        if self.closed.load(Ordering::Relaxed) {
            return Err(SubmitError::Closed);
        }
        let mut queue = Self::lock(&self.queue);
        if queue.len >= self.cfg.queue_depth {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::QueueFull);
        }
        let in_flight = queue.per_client.get(&spec.client).copied().unwrap_or(0);
        if in_flight >= self.cfg.max_per_client {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::ClientLimit);
        }
        // make room in the store before committing to the id
        while self.stored.load(Ordering::Relaxed) >= self.cfg.store_capacity as u64 {
            if !self.evict_oldest_done() {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::QueueFull);
            }
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let id = encode_job_id(self.cfg.node, seq);
        let record = JobRecord {
            id,
            state: JobState::Queued,
            endpoint: spec.endpoint,
            client: spec.client.clone(),
            class: spec.class,
            submitted_micros: self.tick(),
            started_micros: 0,
            finished_micros: 0,
            result: None,
            body: spec.body,
        };
        Self::lock(&self.shard(id).map).insert(id, record);
        self.stored.fetch_add(1, Ordering::Relaxed);
        queue.classes[spec.class as usize].push_back(id);
        queue.len += 1;
        *queue.per_client.entry(spec.client).or_insert(0) += 1;
        self.queued.fetch_add(1, Ordering::Relaxed);
        self.submitted.fetch_add(1, Ordering::Relaxed);
        drop(queue);
        self.queue_cond.notify_one();
        Ok(id)
    }

    /// Blocks a compute worker until a job is available (or `timeout`
    /// passes, or the queue closes), marks it running, and hands back
    /// `(id, endpoint, body, queue_wait_micros)`. Cancelled jobs left
    /// in the queue are skipped here.
    pub fn next_job(&self, timeout: Duration) -> Option<(u64, String, String, u64)> {
        let deadline = Instant::now() + timeout;
        let mut queue = Self::lock(&self.queue);
        loop {
            while let Some(id) = Self::pop_any(&mut queue) {
                drop(queue);
                if let Some(job) = self.start_job(id) {
                    return Some(job);
                }
                queue = Self::lock(&self.queue);
            }
            if self.closed.load(Ordering::Relaxed) {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .queue_cond
                .wait_timeout(queue, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            queue = guard;
        }
    }

    fn pop_any(queue: &mut QueueInner) -> Option<u64> {
        for class in &mut queue.classes {
            if let Some(id) = class.pop_front() {
                queue.len -= 1;
                return Some(id);
            }
        }
        None
    }

    /// Transitions a popped id to Running; `None` when the record was
    /// cancelled (or evicted) while waiting.
    fn start_job(&self, id: u64) -> Option<(u64, String, String, u64)> {
        let shard = self.shard(id);
        let mut map = Self::lock(&shard.map);
        let rec = map.get_mut(&id)?;
        if rec.state != JobState::Queued {
            return None;
        }
        rec.state = JobState::Running;
        rec.started_micros = self.tick();
        self.queued.fetch_sub(1, Ordering::Relaxed);
        self.running.fetch_add(1, Ordering::Relaxed);
        Some((
            id,
            rec.endpoint.clone(),
            std::mem::take(&mut rec.body),
            rec.queue_wait_micros(),
        ))
    }

    /// Parks a finished job's outcome and wakes long-pollers.
    pub fn finish(&self, id: u64, outcome: JobOutcome) {
        let shard = self.shard(id);
        let mut map = Self::lock(&shard.map);
        let Some(rec) = map.get_mut(&id) else { return };
        if rec.state != JobState::Running {
            return;
        }
        rec.state = if outcome.is_ok() {
            self.completed.fetch_add(1, Ordering::Relaxed);
            JobState::Done
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed);
            JobState::Failed
        };
        rec.finished_micros = self.tick();
        rec.result = Some(outcome);
        let client = rec.client.clone();
        drop(map);
        self.running.fetch_sub(1, Ordering::Relaxed);
        self.release_client(&client);
        shard.cond.notify_all();
    }

    /// Cancels a queued job (the id stays parked in the queue; workers
    /// skip terminal records on pop).
    ///
    /// # Errors
    ///
    /// [`CancelError::NotFound`] for unknown ids,
    /// [`CancelError::NotCancellable`] once the job left the queue.
    pub fn cancel(&self, id: u64) -> Result<(), CancelError> {
        let shard = self.shard(id);
        let mut map = Self::lock(&shard.map);
        let Some(rec) = map.get_mut(&id) else {
            return Err(CancelError::NotFound);
        };
        if rec.state != JobState::Queued {
            return Err(CancelError::NotCancellable(rec.state));
        }
        rec.state = JobState::Cancelled;
        rec.finished_micros = self.tick();
        rec.body = String::new();
        let client = rec.client.clone();
        drop(map);
        self.queued.fetch_sub(1, Ordering::Relaxed);
        self.cancelled.fetch_add(1, Ordering::Relaxed);
        self.release_client(&client);
        shard.cond.notify_all();
        Ok(())
    }

    fn release_client(&self, client: &str) {
        let mut queue = Self::lock(&self.queue);
        if let Some(n) = queue.per_client.get_mut(client) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                queue.per_client.remove(client);
            }
        }
    }

    /// Snapshot of one record (cloned out from under the shard lock).
    #[must_use]
    pub fn get(&self, id: u64) -> Option<JobRecord> {
        Self::lock(&self.shard(id).map).get(&id).cloned()
    }

    /// Long-poll: blocks until the record is terminal or `max` passes,
    /// then returns the freshest snapshot (None for unknown ids).
    #[must_use]
    pub fn wait(&self, id: u64, max: Duration) -> Option<JobRecord> {
        let deadline = Instant::now() + max;
        let shard = self.shard(id);
        let mut map = Self::lock(&shard.map);
        loop {
            let rec = map.get(&id)?;
            if rec.state.is_terminal() {
                return Some(rec.clone());
            }
            let now = Instant::now();
            if now >= deadline || self.closed.load(Ordering::Relaxed) {
                return Some(rec.clone());
            }
            let (guard, _) = shard
                .cond
                .wait_timeout(map, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            map = guard;
        }
    }

    /// Current counters and gauges.
    #[must_use]
    pub fn snapshot(&self) -> JobsSnapshot {
        JobsSnapshot {
            queued: self.queued.load(Ordering::Relaxed),
            running: self.running.load(Ordering::Relaxed),
            stored: self.stored.load(Ordering::Relaxed),
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
        }
    }

    /// Closes the queue for shutdown: pending `next_job`/`wait` calls
    /// return promptly and new submissions are refused.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Relaxed);
        self.queue_cond.notify_all();
        for shard in &self.shards {
            shard.cond.notify_all();
        }
    }
}

impl Shard {
    fn map_remove(&self, id: u64) -> bool {
        self.map
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&id)
            .is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(endpoint: &str, client: &str) -> JobSpec {
        JobSpec {
            endpoint: endpoint.to_owned(),
            body: format!("{{\"endpoint\":\"{endpoint}\"}}"),
            client: client.to_owned(),
            class: CostClass::for_endpoint(endpoint),
        }
    }

    #[test]
    fn job_ids_round_trip_and_carry_the_node() {
        let id = encode_job_id(3, 41);
        assert_eq!(job_node(id), 3);
        assert_eq!(id & SEQ_MASK, 41);
        let wire = format_job_id(id);
        assert_eq!(wire.len(), 16);
        assert_eq!(parse_job_id(&wire), Some(id));
        assert_eq!(parse_job_id("xyz"), None);
        assert_eq!(parse_job_id("00ff"), None, "short forms are rejected");
        // node indices wrap into NODE_BITS
        assert_eq!(job_node(encode_job_id(0x1_05, 1)), 0x05);
    }

    #[test]
    fn queue_drains_lighter_cost_classes_first() {
        let q = JobQueue::new(JobConfig::default());
        let heavy = q.submit(spec("campaign", "a")).unwrap();
        let medium = q.submit(spec("montecarlo", "a")).unwrap();
        let light = q.submit(spec("evaluate", "a")).unwrap();
        let order: Vec<u64> = (0..3)
            .map(|_| q.next_job(Duration::from_millis(10)).unwrap().0)
            .collect();
        assert_eq!(order, vec![light, medium, heavy]);
        assert!(q.next_job(Duration::from_millis(1)).is_none());
    }

    #[test]
    fn admission_bounds_queue_depth_and_per_client() {
        let q = JobQueue::new(JobConfig {
            queue_depth: 3,
            max_per_client: 2,
            ..JobConfig::default()
        });
        q.submit(spec("evaluate", "a")).unwrap();
        q.submit(spec("evaluate", "a")).unwrap();
        assert_eq!(
            q.submit(spec("evaluate", "a")),
            Err(SubmitError::ClientLimit)
        );
        q.submit(spec("evaluate", "b")).unwrap();
        assert_eq!(q.submit(spec("evaluate", "c")), Err(SubmitError::QueueFull));
        assert_eq!(q.snapshot().rejected, 2);
        // finishing a job releases the client's admission slot
        let (id, _, _, _) = q.next_job(Duration::from_millis(10)).unwrap();
        q.finish(id, Ok(("{}".to_owned(), false)));
        q.submit(spec("evaluate", "a")).unwrap();
    }

    #[test]
    fn lifecycle_ticks_and_outcome_are_recorded() {
        let q = JobQueue::new(JobConfig::default());
        let id = q.submit(spec("evaluate", "a")).unwrap();
        assert_eq!(q.get(id).unwrap().state, JobState::Queued);
        let (popped, endpoint, body, wait) = q.next_job(Duration::from_millis(10)).unwrap();
        assert_eq!(popped, id);
        assert_eq!(endpoint, "evaluate");
        assert!(body.contains("evaluate"));
        let rec = q.get(id).unwrap();
        assert_eq!(rec.state, JobState::Running);
        assert!(rec.started_micros >= rec.submitted_micros);
        assert_eq!(wait, rec.queue_wait_micros());
        q.finish(id, Ok(("{\"a\":1}".to_owned(), true)));
        let rec = q.get(id).unwrap();
        assert_eq!(rec.state, JobState::Done);
        assert!(rec.finished_micros >= rec.started_micros);
        assert_eq!(rec.result, Some(Ok(("{\"a\":1}".to_owned(), true))));
        let snap = q.snapshot();
        assert_eq!((snap.completed, snap.running, snap.queued), (1, 0, 0));
    }

    #[test]
    fn cancel_only_hits_queued_jobs_and_workers_skip_them() {
        let q = JobQueue::new(JobConfig::default());
        let id = q.submit(spec("campaign", "a")).unwrap();
        q.cancel(id).unwrap();
        assert_eq!(q.get(id).unwrap().state, JobState::Cancelled);
        assert_eq!(
            q.cancel(id),
            Err(CancelError::NotCancellable(JobState::Cancelled))
        );
        assert_eq!(q.cancel(encode_job_id(0, 999)), Err(CancelError::NotFound));
        // the parked id is skipped, not executed
        assert!(q.next_job(Duration::from_millis(1)).is_none());
        let snap = q.snapshot();
        assert_eq!((snap.cancelled, snap.queued), (1, 0));
    }

    #[test]
    fn store_evicts_oldest_done_but_never_live_records() {
        let q = JobQueue::new(JobConfig {
            store_capacity: 2,
            ..JobConfig::default()
        });
        let a = q.submit(spec("evaluate", "a")).unwrap();
        let (id, _, _, _) = q.next_job(Duration::from_millis(10)).unwrap();
        assert_eq!(id, a);
        q.finish(a, Ok(("{}".to_owned(), false)));
        let b = q.submit(spec("evaluate", "a")).unwrap();
        // store full (a done, b queued): the next submit evicts a
        let c = q.submit(spec("evaluate", "a")).unwrap();
        assert!(q.get(a).is_none(), "oldest done record was evicted");
        assert!(q.get(b).is_some() && q.get(c).is_some());
        // both live records are queued: nothing is evictable
        assert_eq!(q.submit(spec("evaluate", "b")), Err(SubmitError::QueueFull));
        assert_eq!(q.snapshot().evicted, 1);
    }

    #[test]
    fn wait_long_polls_until_terminal() {
        let q = std::sync::Arc::new(JobQueue::new(JobConfig::default()));
        let id = q.submit(spec("evaluate", "a")).unwrap();
        let worker = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || {
                let (id, _, _, _) = q.next_job(Duration::from_secs(1)).unwrap();
                std::thread::sleep(Duration::from_millis(20));
                q.finish(id, Ok(("{}".to_owned(), false)));
            })
        };
        let rec = q.wait(id, Duration::from_secs(5)).unwrap();
        assert_eq!(rec.state, JobState::Done);
        worker.join().unwrap();
        // a zero-wait poll on an unknown id is just None
        assert!(q.wait(encode_job_id(0, 999), Duration::ZERO).is_none());
    }

    #[test]
    fn close_wakes_workers_and_refuses_new_jobs() {
        let q = std::sync::Arc::new(JobQueue::new(JobConfig::default()));
        let worker = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || q.next_job(Duration::from_secs(30)))
        };
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        assert!(worker.join().unwrap().is_none(), "close wakes the worker");
        assert_eq!(q.submit(spec("evaluate", "a")), Err(SubmitError::Closed));
    }
}
