//! The `--probe` self-client: a scripted smoke test of every endpoint,
//! so CI can exercise a running `raysearchd` without curl or python.
//!
//! Each check issues a real request over TCP and validates the JSON
//! shape *and* the mathematics (closed forms pinned to the paper's
//! values), plus cache behaviour: repeated `/evaluate` and
//! `/montecarlo` requests must come back `cached: true` with the hit
//! visible in `/stats`, and invalid `/montecarlo` requests must fail
//! without touching any cache counter.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use raysearch_core::SpanData;
use serde_json::{Map, Value};

use crate::api::routing_key;
use crate::client::{fetch_json, HttpClient};
use crate::http::{Request, Response};
use crate::route::{rendezvous_rank, BackendSpec, RouterState};
use crate::server::{Handler, Server, ServerConfig};
use crate::telemetry::TRACE_HEADER;

/// One passed probe check, for reporting.
pub type CheckLine = String;

fn expect(condition: bool, what: &str, got: &Value) -> Result<(), String> {
    if condition {
        Ok(())
    } else {
        Err(format!("{what}; response: {}", got.to_json_string()))
    }
}

/// The `result` field of a wrapped endpoint response.
fn result_of(doc: &Value) -> Result<&Value, String> {
    doc.get("result")
        .ok_or_else(|| format!("response without \"result\": {}", doc.to_json_string()))
}

/// Probes every endpoint of the server at `addr`.
///
/// Returns one line per passed check.
///
/// # Errors
///
/// Returns a description of the first failed check.
pub fn run_probe(addr: &str) -> Result<Vec<CheckLine>, String> {
    let mut lines = Vec::new();
    let mut pass = |line: String| lines.push(line);

    // 1. healthz identifies the service
    let (status, doc) = fetch_json(addr, "GET", "/healthz", None)?;
    expect(status == 200, "healthz should be 200", &doc)?;
    expect(
        doc.get("status").and_then(Value::as_str) == Some("ok"),
        "healthz status should be \"ok\"",
        &doc,
    )?;
    pass(format!("healthz: ok ({addr})"));

    // 2. closed_form pins A(3,1) = Λ(4/3) from Theorem 1
    let expected_a31 = raysearch_bounds::a_line(3, 1).expect("(3,1) is searchable");
    let (status, doc) = fetch_json(addr, "GET", "/closed_form?k=3&f=1", None)?;
    expect(status == 200, "closed_form should be 200", &doc)?;
    let a = result_of(&doc)?.get("a").and_then(Value::as_f64);
    expect(
        a.is_some_and(|a| (a - expected_a31).abs() < 1e-12),
        &format!("closed_form a should be {expected_a31}"),
        &doc,
    )?;
    pass(format!("closed_form: A(3,1) = {expected_a31:.6}"));

    // 3. closed_form over a raw eta computes Λ(η)
    let (status, doc) = fetch_json(addr, "GET", "/closed_form?eta=1.5", None)?;
    expect(
        status == 200
            && result_of(&doc)?
                .get("lambda")
                .and_then(Value::as_f64)
                .is_some(),
        "closed_form eta=1.5 should yield a lambda",
        &doc,
    )?;
    pass("closed_form: Λ(1.5) computed".to_owned());

    // 4. evaluate measures the optimal strategy at the closed form
    let body = r#"{"m":2,"k":3,"f":1,"horizon":2000}"#;
    let (status, doc) = fetch_json(addr, "POST", "/evaluate", Some(body))?;
    expect(status == 200, "evaluate should be 200", &doc)?;
    let ratio = result_of(&doc)?
        .get("report")
        .and_then(|r| r.get("ratio"))
        .and_then(Value::as_f64);
    expect(
        ratio.is_some_and(|r| (r - expected_a31).abs() < 1e-2),
        &format!("measured ratio should approach {expected_a31}"),
        &doc,
    )?;
    pass(format!(
        "evaluate: measured ratio {:.6} ≈ A(3,1)",
        ratio.unwrap_or(f64::NAN)
    ));

    // 5. the identical evaluate must be served from cache
    let (status, doc) = fetch_json(addr, "POST", "/evaluate", Some(body))?;
    expect(
        status == 200 && doc.get("cached").and_then(Value::as_bool) == Some(true),
        "repeated evaluate should be cached",
        &doc,
    )?;
    pass("evaluate: repeat request served from cache".to_owned());

    // 6. verdict verifies tightness end to end (the cow-path instance)
    let body = r#"{"m":2,"k":1,"f":0,"horizon":1000,"eps":0.01}"#;
    let (status, doc) = fetch_json(addr, "POST", "/verdict", Some(body))?;
    expect(status == 200, "verdict should be 200", &doc)?;
    let result = result_of(&doc)?;
    let theory = result.get("theory").and_then(Value::as_f64);
    expect(
        theory.is_some_and(|t| (t - 9.0).abs() < 1e-12)
            && result.get("falsified_below").and_then(Value::as_bool) == Some(true),
        "verdict should be tight at theory 9",
        &doc,
    )?;
    pass("verdict: cow path tight at 9, falsified below".to_owned());

    // 7. campaign returns schema-v1 rows
    let (status, doc) = fetch_json(addr, "POST", "/campaign", Some(r#"{"id":"e2","max_k":3}"#))?;
    expect(status == 200, "campaign should be 200", &doc)?;
    let rows = result_of(&doc)?
        .get("campaigns")
        .and_then(Value::as_array)
        .and_then(|cs| cs.first())
        .and_then(|c| c.get("rows"))
        .and_then(Value::as_array)
        .map(<[Value]>::len)
        .unwrap_or(0);
    expect(rows > 0, "campaign e2 should produce rows", &doc)?;
    pass(format!("campaign: e2 produced {rows} rows"));

    // 8. stats reflects the traffic and the cache hit
    let (status, doc) = fetch_json(addr, "GET", "/stats", None)?;
    expect(status == 200, "stats should be 200", &doc)?;
    let hits = cache_hits(&doc);
    let requests = doc
        .get("requests_total")
        .and_then(Value::as_u64)
        .unwrap_or(0);
    expect(hits >= 1, "stats should show at least one cache hit", &doc)?;
    expect(requests >= 7, "stats should count this session", &doc)?;
    pass(format!("stats: {requests} requests, {hits} cache hits"));

    // 9. error handling: unknown path and wrong method
    let (status, doc) = fetch_json(addr, "GET", "/no_such_endpoint", None)?;
    expect(
        status == 404 && doc.get("error").is_some(),
        "unknown path should be a JSON 404",
        &doc,
    )?;
    let (status, doc) = fetch_json(addr, "DELETE", "/evaluate", None)?;
    expect(status == 405, "DELETE /evaluate should be 405", &doc)?;
    pass("errors: 404 and 405 are well-formed JSON".to_owned());

    // 10. montecarlo: the average case stays below the exact worst case
    let mc_body = r#"{"m":2,"k":3,"f":1,"horizon":1000,"samples":2000,"seed":7}"#;
    let (status, doc) = fetch_json(addr, "POST", "/montecarlo", Some(mc_body))?;
    expect(status == 200, "montecarlo should be 200", &doc)?;
    let report = result_of(&doc)?
        .get("report")
        .ok_or_else(|| format!("montecarlo without report: {}", doc.to_json_string()))?;
    let mean = report.get("mean").and_then(Value::as_f64);
    let closed_form = report.get("closed_form").and_then(Value::as_f64);
    expect(
        matches!((mean, closed_form), (Some(mean), Some(cf)) if 1.0 <= mean && mean < cf),
        "montecarlo mean should lie in [1, closed_form)",
        &doc,
    )?;
    expect(
        result_of(&doc)?
            .get("comparison")
            .and_then(|c| c.get("within_worst_case"))
            .and_then(Value::as_bool)
            == Some(true),
        "uniform-subset faults should stay within the worst case",
        &doc,
    )?;
    pass(format!(
        "montecarlo: mean {:.6} < Λ {:.6} over 2000 samples",
        mean.unwrap_or(f64::NAN),
        closed_form.unwrap_or(f64::NAN)
    ));

    // 11. the identical montecarlo is a cache hit, visible in /stats
    let (_, stats_before) = fetch_json(addr, "GET", "/stats", None)?;
    let hits_before = cache_hits(&stats_before);
    let (status, doc) = fetch_json(addr, "POST", "/montecarlo", Some(mc_body))?;
    expect(
        status == 200 && doc.get("cached").and_then(Value::as_bool) == Some(true),
        "repeated montecarlo should be cached",
        &doc,
    )?;
    let (_, stats_after) = fetch_json(addr, "GET", "/stats", None)?;
    expect(
        cache_hits(&stats_after) > hits_before,
        "stats should record the montecarlo cache hit",
        &stats_after,
    )?;
    pass("montecarlo: repeat request served from cache (hit visible in /stats)".to_owned());

    // 12. montecarlo errors are rejected before the cache: two identical
    // bad requests both fail and move no cache counter
    let (_, stats_before) = fetch_json(addr, "GET", "/stats", None)?;
    let bad_body = r#"{"m":2,"k":3,"f":1,"faults":"bogus"}"#;
    for round in ["first", "second"] {
        let (status, doc) = fetch_json(addr, "POST", "/montecarlo", Some(bad_body))?;
        expect(
            status == 400 && doc.get("error").is_some() && doc.get("cached").is_none(),
            &format!("{round} bad montecarlo should be an uncached JSON 400"),
            &doc,
        )?;
    }
    let (_, stats_after) = fetch_json(addr, "GET", "/stats", None)?;
    expect(
        cache_hits(&stats_after) == cache_hits(&stats_before)
            && cache_misses(&stats_after) == cache_misses(&stats_before),
        "bad montecarlo requests must not touch the cache",
        &stats_after,
    )?;
    pass("montecarlo: invalid fault model rejected, cache counters untouched".to_owned());

    // 13. iid crash p = 1.0 (every robot silent): a *valid* scenario
    // whose deterministic all-undetected outcome must surface as an
    // uncached 4xx — each identical retry recomputes (miss counters
    // move, hit and entry counters do not), proving errors never enter
    // the cache
    let (_, stats_before) = fetch_json(addr, "GET", "/stats", None)?;
    let p1_body = r#"{"m":2,"k":3,"f":1,"faults":"iid","p":1.0,"samples":100,"seed":5}"#;
    for round in ["first", "second"] {
        let (status, doc) = fetch_json(addr, "POST", "/montecarlo", Some(p1_body))?;
        expect(
            status == 400
                && doc.get("cached").is_none()
                && doc
                    .get("error")
                    .and_then(Value::as_str)
                    .is_some_and(|e| e.contains("undetected")),
            &format!("{round} p=1.0 montecarlo should be an uncached all-undetected 400"),
            &doc,
        )?;
    }
    let (_, stats_after) = fetch_json(addr, "GET", "/stats", None)?;
    expect(
        cache_hits(&stats_after) == cache_hits(&stats_before)
            && cache_misses(&stats_after) == cache_misses(&stats_before) + 2
            && cache_entries(&stats_after) == cache_entries(&stats_before),
        "p=1.0 runs must recompute every time and cache nothing",
        &stats_after,
    )?;
    pass("montecarlo: iid p=1.0 is a stable uncached 400 (miss counters advance)".to_owned());

    // 14. large fleets past the old k ≈ 139 overflow wall evaluate to
    // finite ratios at the closed form, and the trivial regime serves
    // ratio 1 under the raised k ceiling
    let body = r#"{"m":2,"k":256,"f":128,"horizon":1e6}"#;
    let (status, doc) = fetch_json(addr, "POST", "/evaluate", Some(body))?;
    expect(status == 200, "large-fleet evaluate should be 200", &doc)?;
    let theory = raysearch_bounds::a_rays(2, 256, 128).expect("(2,256,128) is searchable");
    let ratio = result_of(&doc)?
        .get("report")
        .and_then(|r| r.get("ratio"))
        .and_then(Value::as_f64);
    expect(
        ratio.is_some_and(|r| r.is_finite() && ((r - theory) / theory).abs() < 1e-6),
        &format!("k=256 ratio should be finite at the closed form {theory}"),
        &doc,
    )?;
    let trivial = r#"{"m":2,"k":512,"f":1,"horizon":1e6}"#;
    let (status, doc) = fetch_json(addr, "POST", "/evaluate", Some(trivial))?;
    let one = result_of(&doc)?
        .get("report")
        .and_then(|r| r.get("ratio"))
        .and_then(Value::as_f64);
    expect(
        status == 200 && one.is_some_and(|r| (r - 1.0).abs() < 1e-12),
        "trivial-regime evaluate should serve ratio 1",
        &doc,
    )?;
    pass(format!(
        "evaluate: k=256 fleet finite at Λ = {theory:.6}; trivial k=512 serves ratio 1"
    ));

    // 15. the compile tier deduplicates by geometry, not by fault
    // budget: two /evaluate calls at the same (m, k, horizon) with
    // *different* f are distinct result-cache entries, but the second
    // must hit the compiled-fleet memo (the trivial-regime zone fleet
    // is f-free), visible as a compile_hits advance in /stats
    let (_, stats_before) = fetch_json(addr, "GET", "/stats", None)?;
    let compile_hits_before = compile_hits(&stats_before);
    let (status, doc) = fetch_json(
        addr,
        "POST",
        "/evaluate",
        Some(r#"{"m":2,"k":768,"f":1,"horizon":1e6}"#),
    )?;
    expect(status == 200, "k=768 f=1 evaluate should be 200", &doc)?;
    let (status, doc) = fetch_json(
        addr,
        "POST",
        "/evaluate",
        Some(r#"{"m":2,"k":768,"f":3,"horizon":1e6}"#),
    )?;
    expect(
        status == 200 && doc.get("cached").and_then(Value::as_bool) == Some(false),
        "k=768 f=3 evaluate should compute fresh (distinct result key)",
        &doc,
    )?;
    let (_, stats_after) = fetch_json(addr, "GET", "/stats", None)?;
    expect(
        compile_hits(&stats_after) > compile_hits_before,
        "same-geometry evaluate with different f should hit the compile cache",
        &stats_after,
    )?;
    expect(
        compile_entries(&stats_after) > 0,
        "stats should report resident compiled fleets",
        &stats_after,
    )?;
    pass(format!(
        "compile cache: k=768 f=1→f=3 reused one zone fleet ({} hits, {} entries)",
        compile_hits(&stats_after),
        compile_entries(&stats_after)
    ));

    // 16. async jobs: a deep campaign submitted via POST /jobs runs on
    // the compute pool, not an HTTP worker — /healthz and a warm cached
    // read answer in well under 500ms right after the submit — and the
    // long-polled record's payload is byte-identical to the synchronous
    // /campaign answer for the same parameters
    let job_envelope = r#"{"endpoint":"campaign","id":"e11","max_k":12,"client":"probe"}"#;
    let (status, doc) = fetch_json(addr, "POST", "/jobs", Some(job_envelope))?;
    expect(status == 202, "job submit should be 202", &doc)?;
    expect(
        doc.get("state").and_then(Value::as_str) == Some("queued"),
        "a fresh job should report state \"queued\"",
        &doc,
    )?;
    let job_id = doc
        .get("id")
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("job submit without an id: {}", doc.to_json_string()))?;
    let reads_started = std::time::Instant::now();
    let (status, doc) = fetch_json(addr, "GET", "/healthz", None)?;
    expect(status == 200, "healthz during a job should be 200", &doc)?;
    let (status, doc) = fetch_json(addr, "GET", "/closed_form?k=3&f=1", None)?;
    expect(
        status == 200 && doc.get("cached").and_then(Value::as_bool) == Some(true),
        "a warm closed_form during a job should be a cache hit",
        &doc,
    )?;
    let read_micros = reads_started.elapsed().as_micros();
    if read_micros >= 500_000 {
        return Err(format!(
            "healthz + cached read took {read_micros} us alongside a running job (budget 500000)"
        ));
    }
    let record = poll_job_done(addr, &job_id)?;
    let (status, sync) = fetch_json(
        addr,
        "POST",
        "/campaign",
        Some(r#"{"id":"e11","max_k":12}"#),
    )?;
    expect(
        status == 200,
        "synchronous campaign twin should be 200",
        &sync,
    )?;
    let job_payload = record
        .get("result")
        .ok_or_else(|| format!("done job without a result: {}", record.to_json_string()))?
        .to_json_string();
    let sync_payload = result_of(&sync)?.to_json_string();
    if job_payload != sync_payload {
        return Err(format!(
            "job payload diverges from the synchronous answer:\njob:  {job_payload}\nsync: {sync_payload}"
        ));
    }
    expect(
        record
            .get("queue_wait_micros")
            .and_then(Value::as_u64)
            .is_some(),
        "a finished job should report its queue wait",
        &record,
    )?;
    pass(format!(
        "jobs: e11 campaign via POST /jobs byte-identical to sync, reads stayed fast ({read_micros} us)"
    ));

    // 17. job lifecycle counters land in /stats, and terminal jobs are
    // no longer cancellable (409, not a silent success)
    let (status, stats) = fetch_json(addr, "GET", "/stats", None)?;
    let job_counter = |name: &str| {
        stats
            .get("jobs")
            .and_then(|j| j.get(name))
            .and_then(Value::as_u64)
            .unwrap_or(0)
    };
    expect(
        status == 200 && job_counter("submitted") >= 1 && job_counter("completed") >= 1,
        "stats should count the submitted and completed job",
        &stats,
    )?;
    let (status, doc) = fetch_json(addr, "DELETE", &format!("/jobs/{job_id}"), None)?;
    expect(
        status == 409 && doc.get("error").is_some(),
        "cancelling a done job should be a JSON 409",
        &doc,
    )?;
    pass(format!(
        "jobs: lifecycle counters in /stats ({} submitted, {} completed), done job uncancellable",
        job_counter("submitted"),
        job_counter("completed")
    ));

    // 18. job admission errors are well-formed: unknown and malformed
    // ids are 404s, a non-eligible endpoint and a below-threshold
    // payload are 400s that name the problem
    let (status, doc) = fetch_json(addr, "GET", "/jobs/00ffffffffffffff", None)?;
    expect(status == 404, "an unknown job id should be 404", &doc)?;
    let (status, doc) = fetch_json(addr, "GET", "/jobs/not-a-job-id", None)?;
    expect(status == 404, "a malformed job id should be 404", &doc)?;
    let (status, doc) = fetch_json(
        addr,
        "POST",
        "/jobs",
        Some(r#"{"endpoint":"closed_form","k":3,"f":1}"#),
    )?;
    expect(
        status == 400
            && doc
                .get("error")
                .and_then(Value::as_str)
                .is_some_and(|e| e.contains("not job-eligible")),
        "closed_form should not be job-eligible",
        &doc,
    )?;
    let (status, doc) = fetch_json(
        addr,
        "POST",
        "/jobs",
        Some(r#"{"endpoint":"evaluate","m":2,"k":3,"f":1,"horizon":2000}"#),
    )?;
    expect(
        status == 400
            && doc
                .get("error")
                .and_then(Value::as_str)
                .is_some_and(|e| e.contains("cost threshold")),
        "a cheap evaluate should be rejected below the job cost threshold",
        &doc,
    )?;
    pass("jobs: 404s for unknown/malformed ids, 400s for ineligible/cheap payloads".to_owned());

    Ok(lines)
}

/// Long-polls `GET /jobs/{id}?wait_micros=` until the record is
/// terminal, erroring on any terminal state but `done` (and after ~60
/// polls, on a job that never finishes).
fn poll_job_done(addr: &str, job_id: &str) -> Result<Value, String> {
    let target = format!("/jobs/{job_id}?wait_micros=1000000");
    for _ in 0..60 {
        let (status, record) = fetch_json(addr, "GET", &target, None)?;
        if status != 200 {
            return Err(format!(
                "job poll failed with {status}: {}",
                record.to_json_string()
            ));
        }
        match record.get("state").and_then(Value::as_str) {
            Some("done") => return Ok(record),
            Some("queued" | "running") => {}
            other => {
                return Err(format!(
                    "job reached terminal state {other:?}: {}",
                    record.to_json_string()
                ))
            }
        }
    }
    Err(format!(
        "job {job_id} did not finish within the poll budget"
    ))
}

/// A backend that sheds everything: `200` on `/healthz`, a minimal
/// counter document on `/stats`, `503` for every routable request. The
/// self-hosted router probe uses it to test shed passthrough
/// *deterministically* — real overload (a full accept queue) cannot be
/// provoked reliably, but a backend that always answers `503` can.
#[derive(Debug, Default)]
struct ShedStub {
    requests: AtomicU64,
    shed: AtomicU64,
}

impl Handler for ShedStub {
    fn handle(&self, req: &Request) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match req.path.as_str() {
            "/healthz" => {
                let mut doc = Map::new();
                doc.insert("status".to_owned(), Value::String("ok".to_owned()));
                doc.insert("service".to_owned(), Value::String("shed-stub".to_owned()));
                Response::ok(Value::Object(doc).to_json_string())
            }
            "/stats" => {
                let mut doc = Map::new();
                doc.insert(
                    "requests_total".to_owned(),
                    serde_json::to_value(self.requests.load(Ordering::Relaxed))
                        .expect("u64 serializes"),
                );
                doc.insert(
                    "shed_total".to_owned(),
                    serde_json::to_value(self.shed.load(Ordering::Relaxed))
                        .expect("u64 serializes"),
                );
                let mut cache = Map::new();
                for counter in ["hits", "misses", "entries"] {
                    cache.insert(
                        counter.to_owned(),
                        serde_json::to_value(0u64).expect("u64 serializes"),
                    );
                }
                doc.insert("cache".to_owned(), Value::Object(cache));
                Response::ok(Value::Object(doc).to_json_string())
            }
            _ => {
                self.shed.fetch_add(1, Ordering::Relaxed);
                // the shared shed shape: 503 + Retry-After, exactly what
                // a saturated real backend emits (check 21 asserts the
                // header survives the trip through the router)
                Response::shed("shed-stub sheds every request")
            }
        }
    }
}

/// A GET request against `target` as the router would parse it, for
/// computing routing keys probe-side.
fn probe_request(target: &str) -> Request {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (
            p.to_owned(),
            q.split('&')
                .filter(|part| !part.is_empty())
                .map(|part| match part.split_once('=') {
                    Some((k, v)) => (k.to_owned(), v.to_owned()),
                    None => (part.to_owned(), String::new()),
                })
                .collect(),
        ),
        None => (target.to_owned(), Vec::new()),
    };
    Request {
        method: "GET".to_owned(),
        version: "HTTP/1.1".to_owned(),
        path,
        query,
        headers: Vec::new(),
        body: Vec::new(),
    }
}

/// The per-backend entry for `id` in a router `/stats` document.
fn backend_entry<'a>(stats: &'a Value, id: &str) -> Result<&'a Value, String> {
    stats
        .get("backends")
        .and_then(Value::as_array)
        .and_then(|bs| {
            bs.iter()
                .find(|b| b.get("id").and_then(Value::as_str) == Some(id))
        })
        .ok_or_else(|| {
            format!(
                "router stats missing backend {id:?}: {}",
                stats.to_json_string()
            )
        })
}

fn routed_of(stats: &Value, id: &str) -> Result<u64, String> {
    Ok(backend_entry(stats, id)?
        .get("routed")
        .and_then(Value::as_u64)
        .unwrap_or(0))
}

/// Probes a self-hosted router: one real in-process backend plus one
/// always-shedding stub, fronted by a [`RouterState`] server. The checks
/// continue the single-backend probe's numbering (19–28): rendezvous
/// routing lands on the predicted shard (visible in per-backend
/// `/stats` deltas), the aggregated `/stats` arithmetic is internally
/// consistent, a backend's `503` (with its `Retry-After` hint) passes
/// through to the client, and `/jobs` traffic routes by the inner
/// payload's key on submit and by the id's embedded backend affinity
/// on poll/cancel.
///
/// # Errors
///
/// Returns a description of the first failed check.
pub fn run_router_probe() -> Result<Vec<CheckLine>, String> {
    // one real backend, one shedding stub, and the router over both
    let small = ServerConfig {
        workers: 4,
        cache_capacity: 256,
        cache_shards: 4,
        ..ServerConfig::default()
    };
    let backend_server = Server::bind(small.clone()).map_err(|e| format!("bind backend: {e}"))?;
    // check 25 asserts on an assembled cross-tier trace, which needs
    // the backend to have sampled the same request the router did
    backend_server.state().telemetry().set_trace_sample(1);
    let backend = backend_server.spawn();
    let stub = Server::bind_with(small.clone(), Arc::new(ShedStub::default()))
        .map_err(|e| format!("bind stub: {e}"))?
        .spawn();
    let state = Arc::new(RouterState::new(
        vec![
            BackendSpec::fixed("backend-0", &backend.addr().to_string()),
            BackendSpec::fixed("shed-stub", &stub.addr().to_string()),
        ],
        None,
    ));
    state.check_backends_now();
    let router = Server::bind_with(small, Arc::clone(&state))
        .map_err(|e| format!("bind router: {e}"))?
        .spawn();

    let outcome = router_checks(&router.addr().to_string(), &state);
    router.shutdown();
    stub.shutdown();
    backend.shutdown();
    outcome
}

fn router_checks(addr: &str, state: &RouterState) -> Result<Vec<CheckLine>, String> {
    let mut lines = Vec::new();
    let mut pass = |line: String| lines.push(line);
    let ids = state.backend_ids();

    // pick, by the same pure rendezvous function the router runs, one
    // target owned by each backend — the probe *predicts* placement
    let owned_target = |id: &str| -> Result<String, String> {
        (1u32..200)
            .map(|k| format!("/closed_form?k={k}&f=0"))
            .find(|target| {
                let rank = rendezvous_rank(&ids, &routing_key(&probe_request(target)));
                ids[rank[0]] == id
            })
            .ok_or_else(|| format!("no probe target ranks {id:?} first"))
    };

    // 19. routing lands on the predicted shard, visible as a
    // per-backend routed delta, and the repeat is that shard's memo hit
    let target = owned_target("backend-0")?;
    let (_, before) = fetch_json(addr, "GET", "/stats", None)?;
    let (status, first) = fetch_json(addr, "GET", &target, None)?;
    expect(status == 200, "routed closed_form should be 200", &first)?;
    let (status, second) = fetch_json(addr, "GET", &target, None)?;
    expect(
        status == 200 && second.get("cached").and_then(Value::as_bool) == Some(true),
        "repeat through the router should hit the owning shard's cache",
        &second,
    )?;
    let (_, after) = fetch_json(addr, "GET", "/stats", None)?;
    let delta_owner = routed_of(&after, "backend-0")? - routed_of(&before, "backend-0")?;
    let delta_stub = routed_of(&after, "shed-stub")? - routed_of(&before, "shed-stub")?;
    expect(
        delta_owner == 2 && delta_stub == 0,
        "both requests should route to the predicted backend only",
        &after,
    )?;
    pass(format!(
        "check 19 - route: {target} routed to backend-0 twice (predicted), repeat cached"
    ));

    // 20. aggregated /stats arithmetic: router totals equal the sum of
    // the per-backend columns in one snapshot. /stats serves from the
    // health thread's cached snapshots (zero synchronous polling), so
    // run one explicit health pass first to fold check 19's traffic in.
    state.check_backends_now();
    let (status, stats) = fetch_json(addr, "GET", "/stats", None)?;
    expect(status == 200, "router stats should be 200", &stats)?;
    let uint = |doc: &Value, name: &str| doc.get(name).and_then(Value::as_u64).unwrap_or(0);
    let backends = stats
        .get("backends")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("router stats without backends: {}", stats.to_json_string()))?;
    let sum = |field: &str| -> u64 { backends.iter().map(|b| uint(b, field)).sum() };
    expect(
        uint(&stats, "routed_total") == sum("routed"),
        "routed_total should equal the per-backend routed sum",
        &stats,
    )?;
    expect(
        uint(&stats, "cache_hits") == sum("hits")
            && uint(&stats, "cache_misses") == sum("misses")
            && uint(&stats, "backend_shed") == sum("shed")
            && uint(&stats, "backend_requests") == sum("requests"),
        "aggregated cache/shed/request sums should match the per-backend columns",
        &stats,
    )?;
    expect(
        backends
            .iter()
            .all(|b| b.get("reachable").and_then(Value::as_bool) == Some(true)),
        "both probe backends should be reachable",
        &stats,
    )?;
    expect(
        uint(&stats, "cache_hits") >= 1,
        "the check-16 repeat should be visible as an aggregated hit",
        &stats,
    )?;
    expect(
        stats
            .get("stats_age_micros")
            .and_then(Value::as_u64)
            .is_some()
            && backends
                .iter()
                .all(|b| b.get("stats_age_micros").and_then(Value::as_u64).is_some()),
        "cached snapshots should carry their staleness age",
        &stats,
    )?;
    pass(format!(
        "check 20 - stats: totals consistent over {} backends ({} routed, {} hits, snapshot age {} us)",
        backends.len(),
        uint(&stats, "routed_total"),
        uint(&stats, "cache_hits"),
        uint(&stats, "stats_age_micros")
    ));

    // 21. a backend's 503 passes through: the router reports the shed
    // verbatim — including the Retry-After back-off hint, which the
    // router must re-attach since forwarding keeps only the body —
    // counts it, and does not fail over (overload is an answer, not a
    // transport error)
    let target = owned_target("shed-stub")?;
    let (_, before) = fetch_json(addr, "GET", "/stats", None)?;
    let failovers_before = state.failover_total();
    let mut shed_client =
        HttpClient::connect(addr).map_err(|e| format!("connect for shed check: {e}"))?;
    let (status, headers, body) = shed_client
        .request_with_headers("GET", &target, None, &[])
        .map_err(|e| format!("shed request: {e}"))?;
    let doc = serde_json::from_str(&body)
        .map_err(|e| format!("check 21: shed body is not JSON ({e}): {body}"))?;
    expect(
        status == 503 && doc.get("error").is_some(),
        "a stub-owned request should come back as the stub's JSON 503",
        &doc,
    )?;
    let retry_after = headers
        .iter()
        .find(|(n, _)| n == "retry-after")
        .map(|(_, v)| v.as_str());
    expect(
        retry_after == Some("1"),
        "the shed 503 should carry Retry-After: 1 through the router",
        &doc,
    )?;
    let (_, after) = fetch_json(addr, "GET", "/stats", None)?;
    expect(
        uint(&after, "shed_passthrough") == uint(&before, "shed_passthrough") + 1,
        "the passthrough should advance shed_passthrough by exactly one",
        &after,
    )?;
    expect(
        state.failover_total() == failovers_before,
        "a 503 answer must not trigger failover",
        &after,
    )?;
    pass(format!(
        "check 21 - shed: {target} passed the stub's 503 + Retry-After through, no failover"
    ));

    // 22. trace echo: a client-supplied x-raysearch-trace id comes back
    // verbatim; without one the router mints a 16-hex id
    let target = owned_target("backend-0")?;
    let mut client =
        HttpClient::connect(addr).map_err(|e| format!("connect for trace check: {e}"))?;
    let (status, headers, _) = client
        .request_with_headers("GET", &target, None, &[(TRACE_HEADER, "00000000deadbeef")])
        .map_err(|e| format!("traced request: {e}"))?;
    let echoed = headers
        .iter()
        .find(|(n, _)| n == TRACE_HEADER)
        .map(|(_, v)| v.as_str());
    if !(status == 200 && echoed == Some("00000000deadbeef")) {
        return Err(format!(
            "check 22: expected the trace id echoed verbatim, got status {status}, header {echoed:?}"
        ));
    }
    let (_, headers, _) = client
        .request_with_headers("GET", &target, None, &[])
        .map_err(|e| format!("untraced request: {e}"))?;
    let minted = headers
        .iter()
        .find(|(n, _)| n == TRACE_HEADER)
        .map(|(_, v)| v.clone())
        .ok_or("check 22: response without a minted trace header")?;
    if minted.len() != 16 || !minted.chars().all(|c| c.is_ascii_hexdigit()) {
        return Err(format!(
            "check 22: minted trace {minted:?} is not 16 hex digits"
        ));
    }
    pass(format!(
        "check 22 - trace: echo verbatim, minted {minted} without one"
    ));

    // 23. /metrics speaks Prometheus text exposition: counters, TYPE
    // lines, cumulative histogram buckets with an +Inf bound
    let (status, headers, metrics) = client
        .request_with_headers("GET", "/metrics", None, &[])
        .map_err(|e| format!("metrics request: {e}"))?;
    let content_type = headers
        .iter()
        .find(|(n, _)| n == "content-type")
        .map(|(_, v)| v.as_str())
        .unwrap_or("");
    let well_formed = status == 200
        && content_type.starts_with("text/plain")
        && metrics.contains("# TYPE raysearch_router_requests_total counter\n")
        && metrics.contains("# TYPE raysearch_router_span_latency_micros histogram\n")
        && metrics.contains("raysearch_router_span_latency_micros_bucket{endpoint=\"closed_form\",span=\"request\",le=\"+Inf\"}")
        && metrics.contains("raysearch_router_backend_cache_hits_total{backend=");
    if !well_formed {
        return Err(format!(
            "check 23: /metrics not valid exposition (status {status}, content-type {content_type:?}):\n{metrics}"
        ));
    }
    pass("check 23 - metrics: Prometheus exposition with counters and histograms".to_owned());

    // 24. slow-log capture: with the threshold at zero every request is
    // captured, trace id and span breakdown included
    state.telemetry().set_slow_threshold(0);
    let (status, _, _) = client
        .request_with_headers("GET", &target, None, &[(TRACE_HEADER, "00000000cafef00d")])
        .map_err(|e| format!("slow-logged request: {e}"))?;
    if status != 200 {
        return Err(format!("check 24: routed request failed with {status}"));
    }
    let (status, slow) = fetch_json(addr, "GET", "/debug/slow", None)?;
    let entries = slow
        .get("entries")
        .and_then(Value::as_array)
        .ok_or_else(|| {
            format!(
                "check 24: /debug/slow without entries: {}",
                slow.to_json_string()
            )
        })?;
    let captured = entries.iter().any(|e| {
        e.get("trace").and_then(Value::as_str) == Some("00000000cafef00d")
            && e.get("spans")
                .is_some_and(|s| s.get("backend_wait").and_then(Value::as_u64).is_some())
    });
    if !(status == 200 && captured) {
        return Err(format!(
            "check 24: slow log should capture the traced request with its backend_wait span: {}",
            slow.to_json_string()
        ));
    }
    pass(format!(
        "check 24 - slow log: captured trace 00000000cafef00d with span breakdown ({} entries)",
        entries.len()
    ));

    // 25. assembled trace: GET /debug/trace/{id} on the router returns
    // one stitched tree — router spans at the top, the backend's tree
    // grafted under backend_wait — with the leaf-duration invariant
    state.telemetry().set_trace_sample(1);
    let (status, _, _) = client
        .request_with_headers("GET", &target, None, &[(TRACE_HEADER, "00000000feedface")])
        .map_err(|e| format!("traced request for assembly: {e}"))?;
    if status != 200 {
        return Err(format!("check 25: routed request failed with {status}"));
    }
    let (status, doc) = fetch_json(addr, "GET", "/debug/trace/00000000feedface", None)?;
    expect(status == 200, "assembled trace should be 200", &doc)?;
    expect(
        doc.get("service").and_then(Value::as_str) == Some("raysearch-router")
            && doc.get("trace").and_then(Value::as_str) == Some("00000000feedface"),
        "assembled trace should identify the router and the trace id",
        &doc,
    )?;
    let root_value = doc
        .get("root")
        .ok_or_else(|| "check 25: assembled trace without a root".to_owned())?;
    let root = SpanData::from_json(root_value).map_err(|e| format!("check 25: {e}"))?;
    let wait = root
        .children
        .iter()
        .find(|c| c.name == "backend_wait")
        .ok_or("check 25: assembled trace has no backend_wait span")?;
    let backend_tree = wait
        .children
        .iter()
        .find(|c| c.attrs.iter().any(|(k, _)| k == "service"))
        .ok_or("check 25: backend_wait has no stitched backend tree")?;
    if backend_tree.name != "request" || backend_tree.children.is_empty() {
        return Err(format!(
            "check 25: stitched backend tree looks wrong: {}",
            backend_tree.to_json()
        ));
    }
    if root.leaf_duration_sum() > root.duration_micros() {
        return Err(format!(
            "check 25: leaf durations ({}) exceed the root ({})",
            root.leaf_duration_sum(),
            root.duration_micros()
        ));
    }
    pass(format!(
        "check 25 - trace assembly: stitched tree with {} backend spans, leaves {} us <= root {} us",
        backend_tree.children.len(),
        root.leaf_duration_sum(),
        root.duration_micros()
    ));

    // 26. the trace index lists stored ids, and an unknown id is a
    // well-formed 404
    let (status, index) = fetch_json(addr, "GET", "/debug/trace", None)?;
    let listed = index
        .get("traces")
        .and_then(Value::as_array)
        .is_some_and(|ids| ids.iter().any(|v| v.as_str() == Some("00000000feedface")));
    expect(
        status == 200 && listed,
        "trace index should list the assembled trace",
        &index,
    )?;
    let (status, doc) = fetch_json(addr, "GET", "/debug/trace/fffffffffffffffe", None)?;
    expect(
        status == 404 && doc.get("error").is_some(),
        "an unknown trace id should be a JSON 404",
        &doc,
    )?;
    pass("check 26 - trace index: stored ids listed, unknown id is a JSON 404".to_owned());

    // 27. job submit routes by the *inner* payload's canonical key —
    // the probe predicts a campaign the real backend owns, submits it
    // wrapped as a job, and the minted id routes the poll back to that
    // backend (node 0) for a payload byte-identical to the routed
    // synchronous answer
    let campaign_body = (1u32..=12)
        .map(|max_k| format!(r#"{{"id":"e3","max_k":{max_k}}}"#))
        .find(|body| {
            let mut inner = probe_request("/campaign");
            inner.method = "POST".to_owned();
            inner.body = body.clone().into_bytes();
            let rank = rendezvous_rank(&ids, &routing_key(&inner));
            ids[rank[0]] == "backend-0"
        })
        .ok_or("check 27: no e3 campaign depth ranks backend-0 first")?;
    let envelope = format!(
        r#"{{"endpoint":"campaign",{}"#,
        campaign_body.trim_start_matches('{')
    );
    let (status, doc) = fetch_json(addr, "POST", "/jobs", Some(&envelope))?;
    expect(status == 202, "routed job submit should be 202", &doc)?;
    let job_id = doc
        .get("id")
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("check 27: submit without an id: {}", doc.to_json_string()))?;
    expect(
        job_id.starts_with("00"),
        "a job minted by backend 0 should carry node 0 in its id",
        &doc,
    )?;
    let record = poll_job_done(addr, &job_id)?;
    let (status, sync) = fetch_json(addr, "POST", "/campaign", Some(&campaign_body))?;
    expect(
        status == 200,
        "the routed synchronous campaign twin should be 200",
        &sync,
    )?;
    let job_payload = record
        .get("result")
        .ok_or_else(|| {
            format!(
                "check 27: done job without a result: {}",
                record.to_json_string()
            )
        })?
        .to_json_string();
    let sync_payload = result_of(&sync)?.to_json_string();
    if job_payload != sync_payload {
        return Err(format!(
            "check 27: routed job payload diverges from the routed synchronous answer:\njob:  {job_payload}\nsync: {sync_payload}"
        ));
    }
    pass(format!(
        "check 27 - jobs: {campaign_body} via POST /jobs routed to backend-0, payload byte-identical"
    ));

    // 28. id affinity is strict: an id naming a node beyond the fleet is
    // a router-side 404 (no backend is even contacted), and the fleet
    // /stats aggregates the backend's job counters
    let (status, doc) = fetch_json(addr, "GET", "/jobs/ff00000000000001", None)?;
    expect(
        status == 404
            && doc
                .get("error")
                .and_then(Value::as_str)
                .is_some_and(|e| e.contains("backend")),
        "an id naming backend 255 should be a router-side 404",
        &doc,
    )?;
    state.check_backends_now();
    let (status, stats) = fetch_json(addr, "GET", "/stats", None)?;
    expect(
        status == 200
            && stats
                .get("jobs_submitted")
                .and_then(Value::as_u64)
                .unwrap_or(0)
                >= 1
            && stats
                .get("jobs_completed")
                .and_then(Value::as_u64)
                .unwrap_or(0)
                >= 1,
        "router stats should aggregate the backend's job counters",
        &stats,
    )?;
    pass("check 28 - jobs: out-of-fleet id is a router 404, job counters aggregated".to_owned());

    Ok(lines)
}

/// The cache hit counter of a `/stats` document.
fn cache_hits(stats: &Value) -> u64 {
    stats
        .get("cache")
        .and_then(|c| c.get("hits"))
        .and_then(Value::as_u64)
        .unwrap_or(0)
}

/// The cache miss counter of a `/stats` document.
fn cache_misses(stats: &Value) -> u64 {
    stats
        .get("cache")
        .and_then(|c| c.get("misses"))
        .and_then(Value::as_u64)
        .unwrap_or(0)
}

/// The resident-entry counter of a `/stats` document.
fn cache_entries(stats: &Value) -> u64 {
    stats
        .get("cache")
        .and_then(|c| c.get("entries"))
        .and_then(Value::as_u64)
        .unwrap_or(0)
}

/// The compiled-fleet hit counter of a `/stats` document.
fn compile_hits(stats: &Value) -> u64 {
    stats
        .get("compile_hits")
        .and_then(Value::as_u64)
        .unwrap_or(0)
}

/// The compiled-fleet resident-entry counter of a `/stats` document.
fn compile_entries(stats: &Value) -> u64 {
    stats
        .get("compile_entries")
        .and_then(Value::as_u64)
        .unwrap_or(0)
}
