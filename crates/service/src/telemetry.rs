//! The serving-tier observability layer: per-request span timing into a
//! per-endpoint histogram registry, trace-id minting and propagation, a
//! bounded slow-request log, hierarchical span traces, and the
//! Prometheus text renderer behind `GET /metrics`.
//!
//! Design constraints, in order:
//!
//! 1. **Hot-path cost**: recording a request is a handful of
//!    `Instant::now()` calls plus relaxed atomic adds into
//!    [`LatencyHistogram`]s — no locks on the histogram path (the slow
//!    log's mutex is only taken when a request actually crosses the
//!    threshold, the trace ring's shard lock only when a trace is
//!    kept), no floats.
//! 2. **Determinism**: trace ids come from [`splitmix64`] over a plain
//!    counter, so a `--record` run mints the same id sequence every
//!    time and tapes stay reproducible (response headers never enter
//!    tape digests anyway — see `tape::digest_body`). Trace *sampling*
//!    draws from the same mixer over its own counter, so replaying a
//!    tape keeps the same number of traces at any thread count.
//! 3. **Fixed schema**: endpoints × spans is a small static matrix
//!    ([`ENDPOINT_LABELS`] × [`Span`]), allocated once, so the registry
//!    needs no interior growth and `/metrics` output is stable.
//! 4. **One measurement, two views**: [`SpanSet`] records each span
//!    once and feeds *both* the flat histograms and the hierarchical
//!    span tree stored in the [`TraceRecorder`], so `/metrics` and
//!    `/debug/trace/{id}` can never disagree about a duration.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use raysearch_core::telemetry::{splitmix64, HistogramSnapshot, LatencyHistogram};
use raysearch_core::trace::{CompletedTrace, SpanData, TraceBuilder, TraceRecorder};

use crate::http::{Request, Response};

/// The header trace ids ride in, router → backend → response.
pub const TRACE_HEADER: &str = "x-raysearch-trace";

/// Default slow-request threshold in microseconds (0 = log everything).
pub const DEFAULT_SLOW_THRESHOLD_MICROS: u64 = 100_000;

/// Capacity of the bounded slow-request ring buffer.
pub const SLOW_LOG_CAPACITY: usize = 32;

/// The fixed span schema every request records against.
///
/// Not every span fires on every endpoint — a router request has
/// `route`/`backend_wait` but no `compile`; a cached backend hit has
/// `cache_lookup` but no `evaluate`. Zero-duration spans that never
/// fired are simply not recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Span {
    /// End-to-end request handling (always recorded).
    Request = 0,
    /// Request-parameter parsing and validation.
    Parse = 1,
    /// Router-side backend ranking and selection.
    Route = 2,
    /// Time spent waiting on a proxied backend response.
    BackendWait = 3,
    /// Result-tier LRU lookup (everything in `memoized` outside the
    /// compute closure).
    CacheLookup = 4,
    /// Fleet compilation inside the compile tier.
    Compile = 5,
    /// The evaluation compute itself (compute closure minus compile).
    Evaluate = 6,
    /// Response body serialization.
    Serialize = 7,
    /// Time a job spent queued before a compute worker picked it up.
    QueueWait = 8,
}

/// Number of spans in the fixed schema.
pub const SPAN_COUNT: usize = 9;

/// All spans, in registry order.
pub const SPANS: [Span; SPAN_COUNT] = [
    Span::Request,
    Span::Parse,
    Span::Route,
    Span::BackendWait,
    Span::CacheLookup,
    Span::Compile,
    Span::Evaluate,
    Span::Serialize,
    Span::QueueWait,
];

impl Span {
    /// The snake_case label used in metric names and slow-log dumps.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Span::Request => "request",
            Span::Parse => "parse",
            Span::Route => "route",
            Span::BackendWait => "backend_wait",
            Span::CacheLookup => "cache_lookup",
            Span::Compile => "compile",
            Span::Evaluate => "evaluate",
            Span::Serialize => "serialize",
            Span::QueueWait => "queue_wait",
        }
    }
}

/// The fixed endpoint labels the registry shards over. Unknown paths
/// land in `other` so the matrix never grows.
pub const ENDPOINT_LABELS: [&str; 12] = [
    "closed_form",
    "evaluate",
    "verdict",
    "campaign",
    "montecarlo",
    "healthz",
    "stats",
    "metrics",
    "debug_slow",
    "debug_trace",
    "jobs",
    "other",
];

/// Maps a request path to its [`ENDPOINT_LABELS`] index.
#[must_use]
pub fn endpoint_index(path: &str) -> usize {
    match path {
        "/closed_form" => 0,
        "/evaluate" => 1,
        "/verdict" => 2,
        "/campaign" => 3,
        "/montecarlo" => 4,
        "/healthz" => 5,
        "/stats" => 6,
        "/metrics" => 7,
        "/debug/slow" => 8,
        p if p.starts_with("/debug/trace") => 9,
        p if p == "/jobs" || p.starts_with("/jobs/") => 10,
        _ => 11,
    }
}

/// One captured slow request, as dumped by `GET /debug/slow`.
#[derive(Debug, Clone)]
pub struct SlowEntry {
    /// The minted (or propagated) trace id, 16 hex digits.
    pub trace: String,
    /// Request method.
    pub method: String,
    /// Request path.
    pub path: String,
    /// Response status.
    pub status: u16,
    /// Per-span durations in microseconds, indexed like [`SPANS`]
    /// (`0` where the span never fired).
    pub spans: [u64; SPAN_COUNT],
}

impl SlowEntry {
    fn to_json(&self) -> String {
        let mut spans = String::new();
        for (i, span) in SPANS.iter().enumerate() {
            if self.spans[i] > 0 {
                if !spans.is_empty() {
                    spans.push(',');
                }
                spans.push_str(&format!("\"{}\":{}", span.label(), self.spans[i]));
            }
        }
        format!(
            "{{\"trace\":\"{}\",\"trace_url\":{},\"method\":\"{}\",\"path\":{},\"status\":{},\"total_micros\":{},\"spans\":{{{}}}}}",
            self.trace,
            serde_json::Value::String(format!("/debug/trace/{}", self.trace)).to_json_string(),
            self.method,
            serde_json::Value::String(self.path.clone()).to_json_string(),
            self.status,
            self.spans[Span::Request as usize],
            spans
        )
    }
}

/// Per-request span accumulator: started once at request entry, fed by
/// [`SpanSet::time`] / [`SpanSet::add`], then handed to
/// [`Telemetry::observe`]. Lives on one worker thread's stack — plain
/// `u64`s plus the trace-tree capture, no atomics.
///
/// Every recorded duration lands in two places at once: the flat
/// per-span array (which feeds the endpoint histograms) and a
/// [`SpanData`] child of the request's trace tree. A span may record a
/// different *trace* name than its histogram bucket — the router's
/// failed forward attempts count as `backend_wait` time in the
/// histogram but appear as `failover` spans in the tree.
#[derive(Debug)]
pub struct SpanSet {
    trace: TraceBuilder,
    micros: [u64; SPAN_COUNT],
}

impl Default for SpanSet {
    fn default() -> Self {
        SpanSet::start()
    }
}

impl SpanSet {
    /// Starts the request clock.
    #[must_use]
    pub fn start() -> Self {
        SpanSet {
            trace: TraceBuilder::start(),
            micros: [0; SPAN_COUNT],
        }
    }

    /// Adds `micros` to `span` (spans may fire multiple times per
    /// request, e.g. `backend_wait` across failover attempts). The
    /// trace span is synthesized as ending now.
    pub fn add(&mut self, span: Span, micros: u64) {
        self.add_with_attrs(span, micros, &[]);
    }

    /// Like [`SpanSet::add`], with `key=value` attributes on the trace
    /// span (attributes never affect the histograms).
    pub fn add_with_attrs(&mut self, span: Span, micros: u64, attrs: &[(&str, &str)]) {
        self.micros[span as usize] += micros;
        // the trace span must report the same duration the histogram
        // recorded, so it ends now (or at `micros` if the clock has not
        // advanced that far yet) and extends `micros` backwards
        let end = self.trace.elapsed_micros().max(micros);
        self.record_trace(span.label(), end - micros, end, attrs);
    }

    /// Records `span` over an explicit `[start, end]` interval of the
    /// request clock (see [`SpanSet::elapsed_micros`]) — used when a
    /// measured block is attributed to several consecutive spans after
    /// the fact (cache lookup vs compile vs evaluate).
    pub fn add_interval(
        &mut self,
        span: Span,
        start_micros: u64,
        end_micros: u64,
        attrs: &[(&str, &str)],
    ) {
        self.add_interval_as(span, span.label(), start_micros, end_micros, attrs);
    }

    /// Like [`SpanSet::add_interval`] but names the trace span
    /// `trace_name` instead of `span`'s label — for call sites where the
    /// right name is only known after the measured block returns (a
    /// failed forward is a `failover` span, a successful one
    /// `backend_wait`, but both accumulate into the same histogram).
    pub fn add_interval_as(
        &mut self,
        span: Span,
        trace_name: &str,
        start_micros: u64,
        end_micros: u64,
        attrs: &[(&str, &str)],
    ) {
        self.micros[span as usize] += end_micros.saturating_sub(start_micros);
        self.record_trace(trace_name, start_micros, end_micros, attrs);
    }

    /// Microseconds since the request clock started.
    #[must_use]
    pub fn elapsed_micros(&self) -> u64 {
        self.trace.elapsed_micros()
    }

    /// Times `f` and attributes the elapsed microseconds to `span`.
    pub fn time<T>(&mut self, span: Span, f: impl FnOnce() -> T) -> T {
        self.time_as(span, span.label(), &[], f)
    }

    /// Times `f`, attributing the duration to `span`'s histogram but
    /// recording the trace span under `trace_name` with `attrs` — the
    /// failover variant.
    pub fn time_as<T>(
        &mut self,
        span: Span,
        trace_name: &str,
        attrs: &[(&str, &str)],
        f: impl FnOnce() -> T,
    ) -> T {
        let start = self.trace.elapsed_micros();
        let out = f();
        let end = self.trace.elapsed_micros();
        self.micros[span as usize] += end - start;
        self.record_trace(trace_name, start, end, attrs);
        out
    }

    fn record_trace(&mut self, name: &str, start: u64, end: u64, attrs: &[(&str, &str)]) {
        self.trace.record(SpanData {
            name: name.to_owned(),
            start_micros: start,
            end_micros: end,
            attrs: attrs
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
            children: Vec::new(),
        });
    }

    /// Microseconds recorded so far for `span`.
    #[must_use]
    pub fn get(&self, span: Span) -> u64 {
        self.micros[span as usize]
    }

    /// Closes the request span (total wall time since `start`) and
    /// returns the completed per-span array plus the trace tree, whose
    /// root duration equals the array's `request` entry exactly.
    fn finish(mut self, root_attrs: Vec<(String, String)>) -> ([u64; SPAN_COUNT], SpanData) {
        let root = self.trace.finish(Span::Request.label(), root_attrs);
        self.micros[Span::Request as usize] = root.duration_micros();
        (self.micros, root)
    }
}

/// The per-process telemetry registry: endpoint × span histograms, the
/// trace-id counter, the slow-request ring buffer, and the completed
/// span-trace ring behind `GET /debug/trace/{id}`.
#[derive(Debug)]
pub struct Telemetry {
    /// `hists[endpoint * SPAN_COUNT + span]`.
    hists: Vec<LatencyHistogram>,
    trace_counter: AtomicU64,
    slow_threshold_micros: AtomicU64,
    slow: Mutex<VecDeque<SlowEntry>>,
    recorder: TraceRecorder,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// A fresh registry with the default slow threshold.
    #[must_use]
    pub fn new() -> Self {
        let cells = ENDPOINT_LABELS.len() * SPAN_COUNT;
        Telemetry {
            hists: (0..cells).map(|_| LatencyHistogram::new()).collect(),
            trace_counter: AtomicU64::new(0),
            slow_threshold_micros: AtomicU64::new(DEFAULT_SLOW_THRESHOLD_MICROS),
            slow: Mutex::new(VecDeque::with_capacity(SLOW_LOG_CAPACITY)),
            recorder: TraceRecorder::new(),
        }
    }

    /// The completed-trace ring: lookups for `/debug/trace/{id}`, the
    /// `traces_stored` / `traces_dropped_total` gauges, and the
    /// sampling-rate knob.
    #[must_use]
    pub fn recorder(&self) -> &TraceRecorder {
        &self.recorder
    }

    /// Sets the trace sampling rate: non-slow requests keep one trace
    /// in `n` (`0` and `1` both mean every request).
    pub fn set_trace_sample(&self, n: u64) {
        self.recorder.set_sample_one_in(n);
    }

    /// Mints the next trace id: 16 lowercase hex digits, deterministic
    /// (SplitMix64 over a process-local counter).
    #[must_use]
    pub fn mint_trace(&self) -> String {
        let n = self.trace_counter.fetch_add(1, Ordering::Relaxed);
        format!("{:016x}", splitmix64(n))
    }

    /// The trace id for `req`: a propagated `x-raysearch-trace` header
    /// if the peer sent one, else freshly minted.
    #[must_use]
    pub fn trace_for(&self, req: &Request) -> String {
        match req.header(TRACE_HEADER) {
            Some(v) if !v.is_empty() => v.to_owned(),
            _ => self.mint_trace(),
        }
    }

    /// Sets the slow-log threshold (microseconds; 0 logs every request).
    pub fn set_slow_threshold(&self, micros: u64) {
        self.slow_threshold_micros.store(micros, Ordering::Relaxed);
    }

    /// The current slow-log threshold in microseconds.
    #[must_use]
    pub fn slow_threshold(&self) -> u64 {
        self.slow_threshold_micros.load(Ordering::Relaxed)
    }

    fn hist(&self, endpoint: usize, span: Span) -> &LatencyHistogram {
        &self.hists[endpoint * SPAN_COUNT + span as usize]
    }

    /// Records a finished request: closes the span set, feeds every
    /// fired span into the endpoint's histograms, offers the span tree
    /// to the trace ring (kept when sampled 1-in-N, or unconditionally
    /// when the total crossed the slow threshold), and captures a slow
    /// log entry if the total crossed the threshold.
    pub fn observe(&self, req: &Request, trace: &str, status: u16, spans: SpanSet) {
        let endpoint = endpoint_index(&req.path);
        let root_attrs = vec![
            ("method".to_owned(), req.method.clone()),
            ("path".to_owned(), req.path.clone()),
            ("status".to_owned(), status.to_string()),
            ("endpoint".to_owned(), ENDPOINT_LABELS[endpoint].to_owned()),
        ];
        let (micros, root) = spans.finish(root_attrs);
        for (i, &v) in micros.iter().enumerate() {
            // the request span always records; sub-spans only if fired
            if i == Span::Request as usize || v > 0 {
                self.hists[endpoint * SPAN_COUNT + i].record(v);
            }
        }
        let total = micros[Span::Request as usize];
        // the sampling draw happens for every request (not just fast
        // ones) so the decision sequence — and therefore the number of
        // kept traces over a replay — is independent of timing
        let sampled = self.recorder.sample_decision();
        if sampled || total >= self.slow_threshold() {
            self.recorder.store(CompletedTrace {
                key: TraceRecorder::key_for(trace),
                trace: trace.to_owned(),
                root,
            });
        }
        if total >= self.slow_threshold() {
            let entry = SlowEntry {
                trace: trace.to_owned(),
                method: req.method.clone(),
                path: req.path.clone(),
                status,
                spans: micros,
            };
            let mut slow = self.slow.lock().unwrap_or_else(|e| e.into_inner());
            if slow.len() == SLOW_LOG_CAPACITY {
                slow.pop_front();
            }
            slow.push_back(entry);
        }
    }

    /// Records a single span duration outside the request lifecycle —
    /// how job compute workers, which have no [`Request`] in hand when
    /// a queued job finally starts, feed `queue_wait` and execution
    /// time into the `jobs` endpoint histograms.
    pub fn record_span(&self, path: &str, span: Span, micros: u64) {
        self.hist(endpoint_index(path), span).record(micros);
    }

    /// Total requests observed for the endpoint `path` maps to.
    #[must_use]
    pub fn request_count(&self, path: &str) -> u64 {
        self.hist(endpoint_index(path), Span::Request).count()
    }

    /// Snapshot of one endpoint × span histogram.
    #[must_use]
    pub fn snapshot(&self, endpoint: usize, span: Span) -> HistogramSnapshot {
        self.hist(endpoint, span).snapshot()
    }

    /// The `GET /debug/slow` response body: threshold, capacity, and
    /// the captured entries oldest-first.
    #[must_use]
    pub fn slow_log_json(&self) -> String {
        let slow = self.slow.lock().unwrap_or_else(|e| e.into_inner());
        let entries: Vec<String> = slow.iter().map(SlowEntry::to_json).collect();
        format!(
            "{{\"threshold_micros\":{},\"capacity\":{},\"entries\":[{}]}}",
            self.slow_threshold(),
            SLOW_LOG_CAPACITY,
            entries.join(",")
        )
    }

    /// Renders the latency histograms in Prometheus text exposition
    /// format (metric `{prefix}_span_latency_micros`, labels `endpoint`
    /// and `span`). Endpoint × span cells that never fired are skipped.
    pub fn render_prometheus_histograms(&self, out: &mut String, prefix: &str) {
        let name = format!("{prefix}_span_latency_micros");
        out.push_str(&format!(
            "# HELP {name} Per-span request latency in microseconds.\n# TYPE {name} histogram\n"
        ));
        for (e, endpoint) in ENDPOINT_LABELS.iter().enumerate() {
            for span in SPANS {
                let snap = self.hist(e, span).snapshot();
                if snap.count == 0 {
                    continue;
                }
                let labels = format!("endpoint=\"{endpoint}\",span=\"{}\"", span.label());
                let mut cumulative = 0u64;
                for (b, &n) in snap.buckets.iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    cumulative += n;
                    let le = raysearch_core::telemetry::bucket_upper_bound(b);
                    out.push_str(&format!(
                        "{name}_bucket{{{labels},le=\"{le}\"}} {cumulative}\n"
                    ));
                }
                out.push_str(&format!(
                    "{name}_bucket{{{labels},le=\"+Inf\"}} {cumulative}\n"
                ));
                out.push_str(&format!("{name}_sum{{{labels}}} {}\n", snap.sum));
                out.push_str(&format!("{name}_count{{{labels}}} {}\n", snap.count));
            }
        }
    }
}

/// Appends one Prometheus metric family to `out`: HELP and TYPE once,
/// then every `(labels, value)` sample (labels either empty or a
/// comma-joined `k="v"` list). Grouping samples under one TYPE line is
/// what the exposition format requires for labeled families.
pub fn push_metric(
    out: &mut String,
    name: &str,
    kind: &str,
    help: &str,
    samples: &[(String, u64)],
) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
    for (labels, value) in samples {
        if labels.is_empty() {
            out.push_str(&format!("{name} {value}\n"));
        } else {
            out.push_str(&format!("{name}{{{labels}}} {value}\n"));
        }
    }
}

/// Appends one unlabeled Prometheus counter to `out`.
pub fn push_counter(out: &mut String, name: &str, help: &str, value: u64) {
    push_metric(out, name, "counter", help, &[(String::new(), value)]);
}

/// Appends one unlabeled Prometheus gauge to `out`.
pub fn push_gauge(out: &mut String, name: &str, help: &str, value: u64) {
    push_metric(out, name, "gauge", help, &[(String::new(), value)]);
}

/// Wraps a rendered exposition body into a `200` response with the
/// Prometheus text content type.
#[must_use]
pub fn metrics_response(body: String) -> Response {
    Response::ok(body).with_header("Content-Type", "text/plain; version=0.0.4")
}

/// Renders one stored trace as the `GET /debug/trace/{id}` body:
/// `{"trace":...,"service":...,"root":{span tree}}`. The `root` object
/// is exactly [`SpanData::to_json`], so trees survive a
/// fetch → parse → re-render round trip byte-identically.
#[must_use]
pub fn trace_json(trace: &CompletedTrace, service: &str) -> String {
    format!(
        "{{\"trace\":{},\"service\":{},\"root\":{}}}",
        serde_json::Value::String(trace.trace.clone()).to_json_string(),
        serde_json::Value::String(service.to_owned()).to_json_string(),
        trace.root.to_json()
    )
}

/// Renders the `GET /debug/trace` index: ring occupancy, sampling rate,
/// and the stored trace ids (each one hop from its full tree at
/// `/debug/trace/{id}`).
#[must_use]
pub fn trace_index_json(recorder: &TraceRecorder) -> String {
    let ids: Vec<String> = recorder
        .trace_ids()
        .into_iter()
        .map(|id| serde_json::Value::String(id).to_json_string())
        .collect();
    format!(
        "{{\"stored\":{},\"capacity\":{},\"dropped_total\":{},\"sample_one_in\":{},\"traces\":[{}]}}",
        recorder.stored(),
        recorder.capacity(),
        recorder.dropped_total(),
        recorder.sample_one_in(),
        ids.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(path: &str, headers: Vec<(String, String)>) -> Request {
        Request {
            method: "GET".to_owned(),
            version: "HTTP/1.1".to_owned(),
            path: path.to_owned(),
            query: Vec::new(),
            headers,
            body: Vec::new(),
        }
    }

    #[test]
    fn trace_ids_are_deterministic_and_well_formed() {
        let a = Telemetry::new();
        let b = Telemetry::new();
        let first = a.mint_trace();
        assert_eq!(first.len(), 16);
        assert!(first.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(first, b.mint_trace(), "same counter, same id");
        assert_ne!(first, a.mint_trace(), "ids advance");
    }

    #[test]
    fn incoming_trace_headers_are_propagated_not_replaced() {
        let t = Telemetry::new();
        let req = get(
            "/evaluate",
            vec![(TRACE_HEADER.to_owned(), "00000000deadbeef".to_owned())],
        );
        assert_eq!(t.trace_for(&req), "00000000deadbeef");
        let req = get("/evaluate", Vec::new());
        assert_eq!(t.trace_for(&req).len(), 16);
    }

    #[test]
    fn observe_feeds_the_right_endpoint_histograms() {
        let t = Telemetry::new();
        let req = get("/evaluate", Vec::new());
        let mut spans = SpanSet::start();
        spans.add(Span::Evaluate, 500);
        t.observe(&req, "abc", 200, spans);
        assert_eq!(t.request_count("/evaluate"), 1);
        assert_eq!(t.request_count("/verdict"), 0);
        assert_eq!(
            t.snapshot(endpoint_index("/evaluate"), Span::Evaluate)
                .count,
            1
        );
        // unknown paths land in `other`
        let req = get("/nope", Vec::new());
        t.observe(&req, "abc", 404, SpanSet::start());
        assert_eq!(t.request_count("/nope"), 1);
        assert_eq!(t.request_count("/also-nope"), 1);
    }

    #[test]
    fn slow_log_is_bounded_and_threshold_gated() {
        let t = Telemetry::new();
        t.set_slow_threshold(0); // log everything
        for i in 0..(SLOW_LOG_CAPACITY + 5) {
            let req = get("/evaluate", Vec::new());
            t.observe(&req, &format!("{i:016x}"), 200, SpanSet::start());
        }
        let dump = t.slow_log_json();
        let doc: serde_json::Value = serde_json::from_str(&dump).unwrap();
        let entries = doc
            .get("entries")
            .and_then(serde_json::Value::as_array)
            .unwrap();
        assert_eq!(entries.len(), SLOW_LOG_CAPACITY, "ring buffer is bounded");
        // oldest entries were evicted: the first surviving trace is #5
        let first = entries[0].get("trace").unwrap();
        assert_eq!(first, &serde_json::Value::String(format!("{:016x}", 5)));

        let quiet = Telemetry::new();
        quiet.set_slow_threshold(u64::MAX);
        let req = get("/evaluate", Vec::new());
        quiet.observe(&req, "x", 200, SpanSet::start());
        let doc: serde_json::Value = serde_json::from_str(&quiet.slow_log_json()).unwrap();
        let entries = doc
            .get("entries")
            .and_then(serde_json::Value::as_array)
            .unwrap();
        assert!(entries.is_empty(), "fast requests are not logged");
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_skips_empty_cells() {
        let t = Telemetry::new();
        let req = get("/evaluate", Vec::new());
        let mut spans = SpanSet::start();
        spans.add(Span::Evaluate, 3); // bucket le=3
        t.observe(&req, "x", 200, spans);
        let mut spans = SpanSet::start();
        spans.add(Span::Evaluate, 10); // bucket le=15
        t.observe(&req, "x", 200, spans);

        let mut out = String::new();
        t.render_prometheus_histograms(&mut out, "raysearchd");
        assert!(out.contains("# TYPE raysearchd_span_latency_micros histogram\n"));
        assert!(out.contains(
            "raysearchd_span_latency_micros_bucket{endpoint=\"evaluate\",span=\"evaluate\",le=\"3\"} 1\n"
        ));
        assert!(out.contains(
            "raysearchd_span_latency_micros_bucket{endpoint=\"evaluate\",span=\"evaluate\",le=\"15\"} 2\n"
        ));
        assert!(out.contains(
            "raysearchd_span_latency_micros_bucket{endpoint=\"evaluate\",span=\"evaluate\",le=\"+Inf\"} 2\n"
        ));
        assert!(out.contains(
            "raysearchd_span_latency_micros_sum{endpoint=\"evaluate\",span=\"evaluate\"} 13\n"
        ));
        assert!(out.contains(
            "raysearchd_span_latency_micros_count{endpoint=\"evaluate\",span=\"evaluate\"} 2\n"
        ));
        assert!(
            !out.contains("endpoint=\"verdict\""),
            "cells that never fired are skipped"
        );
    }

    #[test]
    fn debug_trace_paths_have_their_own_endpoint_label() {
        assert_eq!(
            ENDPOINT_LABELS[endpoint_index("/debug/trace")],
            "debug_trace"
        );
        assert_eq!(
            ENDPOINT_LABELS[endpoint_index("/debug/trace/00000000deadbeef")],
            "debug_trace"
        );
        assert_eq!(ENDPOINT_LABELS[endpoint_index("/nope")], "other");
        assert_eq!(ENDPOINT_LABELS[endpoint_index("/debug/slow")], "debug_slow");
    }

    #[test]
    fn job_paths_share_the_jobs_endpoint_label() {
        assert_eq!(ENDPOINT_LABELS[endpoint_index("/jobs")], "jobs");
        assert_eq!(
            ENDPOINT_LABELS[endpoint_index("/jobs/00ff00ff00ff00ff")],
            "jobs"
        );
        assert_eq!(ENDPOINT_LABELS[endpoint_index("/jobsx")], "other");
    }

    #[test]
    fn record_span_feeds_the_jobs_histograms_directly() {
        let t = Telemetry::new();
        t.record_span("/jobs", Span::QueueWait, 250);
        let snap = t.snapshot(endpoint_index("/jobs"), Span::QueueWait);
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum, 250);
    }

    #[test]
    fn observe_stores_a_trace_the_histograms_agree_with() {
        let t = Telemetry::new();
        t.set_trace_sample(1); // always keep
        let req = get("/evaluate", Vec::new());
        let mut spans = SpanSet::start();
        spans.add(Span::Evaluate, 500);
        spans.add_with_attrs(Span::CacheLookup, 40, &[("hit", "false")]);
        t.observe(&req, "00000000deadbeef", 200, spans);

        let key = TraceRecorder::key_for("00000000deadbeef");
        let trace = t.recorder().get(key).expect("trace stored");
        assert_eq!(trace.trace, "00000000deadbeef");
        let root = &trace.root;
        assert_eq!(root.name, "request");
        assert!(root
            .attrs
            .contains(&("path".to_owned(), "/evaluate".to_owned())));
        assert!(root
            .attrs
            .contains(&("status".to_owned(), "200".to_owned())));
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].name, "evaluate");
        assert_eq!(root.children[0].duration_micros(), 500);
        assert_eq!(root.children[1].name, "cache_lookup");
        assert_eq!(
            root.children[1].attrs,
            vec![("hit".to_owned(), "false".to_owned())]
        );
        // the histogram and the tree measured the same span once
        let snap = t.snapshot(endpoint_index("/evaluate"), Span::Evaluate);
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum, 500);
        // and the root covers the request-span total exactly
        let total = t.snapshot(endpoint_index("/evaluate"), Span::Request).sum;
        assert_eq!(root.duration_micros(), total);
    }

    #[test]
    fn trace_sampling_keeps_slow_requests_and_one_in_n_of_the_rest() {
        let t = Telemetry::new();
        t.set_slow_threshold(u64::MAX); // nothing is "slow"
        t.set_trace_sample(2);
        let requests = 64u64;
        for _ in 0..requests {
            let req = get("/evaluate", Vec::new());
            t.observe(&req, &t.mint_trace(), 200, SpanSet::start());
        }
        let expected = (0..requests)
            .filter(|&c| splitmix64(c).is_multiple_of(2))
            .count() as u64;
        assert_eq!(t.recorder().stored(), expected, "1-in-2 of {requests}");

        // threshold 0 makes every request slow, so everything is kept
        // regardless of the sampling rate
        let slow = Telemetry::new();
        slow.set_slow_threshold(0);
        slow.set_trace_sample(u64::MAX);
        for _ in 0..5 {
            let req = get("/evaluate", Vec::new());
            slow.observe(&req, &slow.mint_trace(), 200, SpanSet::start());
        }
        assert_eq!(slow.recorder().stored(), 5);
    }

    #[test]
    fn time_as_splits_histogram_bucket_from_trace_name() {
        let t = Telemetry::new();
        t.set_trace_sample(1);
        let req = get("/closed_form", Vec::new());
        let mut spans = SpanSet::start();
        spans.time_as(
            Span::BackendWait,
            "failover",
            &[("backend", "backend-1")],
            || {
                std::thread::sleep(std::time::Duration::from_micros(200));
            },
        );
        spans.time(Span::BackendWait, || ());
        let wait_micros = spans.get(Span::BackendWait);
        assert!(
            wait_micros >= 200,
            "both attempts accumulate: {wait_micros}"
        );
        t.observe(&req, "ff", 200, spans);

        let trace = t.recorder().get(0xff).expect("stored");
        let names: Vec<&str> = trace
            .root
            .children
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(names, vec!["failover", "backend_wait"]);
        assert_eq!(
            trace.root.children[0].attrs,
            vec![("backend".to_owned(), "backend-1".to_owned())]
        );
        // histogram-side both attempts land in backend_wait
        let snap = t.snapshot(endpoint_index("/closed_form"), Span::BackendWait);
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum, wait_micros);
    }

    #[test]
    fn slow_entries_link_to_their_trace() {
        let t = Telemetry::new();
        t.set_slow_threshold(0);
        let req = get("/evaluate", Vec::new());
        t.observe(&req, "00000000deadbeef", 200, SpanSet::start());
        let doc: serde_json::Value = serde_json::from_str(&t.slow_log_json()).unwrap();
        let entries = doc
            .get("entries")
            .and_then(serde_json::Value::as_array)
            .unwrap();
        assert_eq!(
            entries[0]
                .get("trace_url")
                .and_then(serde_json::Value::as_str),
            Some("/debug/trace/00000000deadbeef")
        );
    }

    #[test]
    fn trace_json_round_trips_through_the_wire_format() {
        let t = Telemetry::new();
        t.set_trace_sample(1);
        let req = get("/evaluate", Vec::new());
        let mut spans = SpanSet::start();
        spans.add(Span::Evaluate, 123);
        t.observe(&req, "ab", 200, spans);
        let stored = t.recorder().get(0xab).unwrap();
        let body = trace_json(&stored, "raysearchd");
        let doc: serde_json::Value = serde_json::from_str(&body).expect("trace JSON parses");
        assert_eq!(
            doc.get("service").and_then(serde_json::Value::as_str),
            Some("raysearchd")
        );
        let root = SpanData::from_json(doc.get("root").expect("root")).expect("schema");
        assert_eq!(root, stored.root);
        assert_eq!(root.to_json(), stored.root.to_json());
    }
}
