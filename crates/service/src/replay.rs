//! Deterministic tape replay: re-issue a recorded request stream at
//! configurable concurrency and verify every response byte-identical
//! to the tape's recorded digests.
//!
//! Replay is a *verification* pass, not just a load generator. Each
//! worker takes a deterministic round-robin share of the tape in tick
//! order (worker `w` of `c` gets entries `w, w+c, w+2c, …`), so the
//! multiset of requests issued — and, because backends coalesce
//! concurrent identical computations under the memo-shard lock, the
//! aggregate hit/miss/shed counters — is a pure function of the tape
//! and the fleet's cache temperature, independent of concurrency and
//! scheduling. That is what lets CI assert `replay(tape, c=1)` and
//! `replay(tape, c=8)` produce *identical* counter fingerprints.
//!
//! Per response, the harness distinguishes: digest match (the
//! byte-identity criterion, modulo the `cached` flag), digest
//! mismatch (a hard failure), `503` shed (counted, not compared — an
//! overloaded fleet refuses, it does not lie), and transport errors.

use std::time::Instant;

use serde_json::{Map, Value};

use crate::client::HttpClient;
use crate::load::EndpointLatency;
use crate::tape::Tape;
use raysearch_core::telemetry::LatencyHistogram;

/// How many mismatches keep their full detail line in the report.
pub const MAX_MISMATCH_DETAILS: usize = 8;

/// The outcome of one replay pass.
#[derive(Debug, Clone, Default)]
pub struct ReplayReport {
    /// Entries issued.
    pub requests: u64,
    /// Responses byte-identical to the tape (status + normalized digest).
    pub matched: u64,
    /// Responses that differed — wrong bytes, the hard failure.
    pub mismatched: u64,
    /// `200` responses served from a backend memo cache.
    pub hits: u64,
    /// `200` responses computed fresh.
    pub misses: u64,
    /// `503` responses (shed by the router or a backend).
    pub sheds: u64,
    /// Requests that failed at the transport layer.
    pub transport_errors: u64,
    /// Wall-clock duration of the pass, microseconds.
    pub wall_micros: u64,
    /// Details of the first [`MAX_MISMATCH_DETAILS`] mismatches.
    pub mismatch_details: Vec<String>,
    /// Client-side latency percentiles per endpoint (wall-clock data,
    /// so — like `wall_micros` — excluded from [`Self::fingerprint`]).
    pub endpoints: Vec<EndpointLatency>,
}

impl ReplayReport {
    /// Requests per second over the wall clock.
    #[must_use]
    pub fn rps(&self) -> f64 {
        if self.wall_micros == 0 {
            f64::INFINITY
        } else {
            self.requests as f64 / (self.wall_micros as f64 / 1e6)
        }
    }

    /// Cache-hit rate over the `200` responses (0 when there were none).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let ok = self.hits + self.misses;
        if ok == 0 {
            0.0
        } else {
            self.hits as f64 / ok as f64
        }
    }

    /// Shed rate over all issued requests (0 when none were issued).
    #[must_use]
    pub fn shed_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.sheds as f64 / self.requests as f64
        }
    }

    /// The deterministic counters as one comparable line — everything
    /// except wall-clock figures. Two replays of the same tape against
    /// same-temperature fleets must produce identical fingerprints
    /// regardless of concurrency; CI enforces exactly this.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        format!(
            "requests={} matched={} mismatched={} hits={} misses={} sheds={} transport_errors={}",
            self.requests,
            self.matched,
            self.mismatched,
            self.hits,
            self.misses,
            self.sheds,
            self.transport_errors
        )
    }

    /// The report as a JSON document (fixed field order), the
    /// `BENCH_7.json`-style artifact `replaygen` emits.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut doc = Map::new();
        let mut uint = |name: &str, value: u64| {
            doc.insert(
                name.to_owned(),
                serde_json::to_value(value).expect("u64 serializes"),
            );
        };
        uint("requests", self.requests);
        uint("matched", self.matched);
        uint("mismatched", self.mismatched);
        uint("hits", self.hits);
        uint("misses", self.misses);
        uint("sheds", self.sheds);
        uint("transport_errors", self.transport_errors);
        uint("wall_micros", self.wall_micros);
        doc.insert("rps".to_owned(), Value::Float(self.rps()));
        doc.insert("hit_rate".to_owned(), Value::Float(self.hit_rate()));
        doc.insert("shed_rate".to_owned(), Value::Float(self.shed_rate()));
        doc.insert(
            "mismatch_details".to_owned(),
            Value::Array(
                self.mismatch_details
                    .iter()
                    .map(|d| Value::String(d.clone()))
                    .collect(),
            ),
        );
        doc.insert(
            "endpoints".to_owned(),
            Value::Array(
                self.endpoints
                    .iter()
                    .map(|e| {
                        let mut obj = Map::new();
                        obj.insert("endpoint".to_owned(), Value::String(e.endpoint.clone()));
                        let mut uint = |name: &str, value: u64| {
                            obj.insert(
                                name.to_owned(),
                                serde_json::to_value(value).expect("u64 serializes"),
                            );
                        };
                        uint("requests", e.requests);
                        uint("p50_micros", e.p50_micros);
                        uint("p90_micros", e.p90_micros);
                        uint("p95_micros", e.p95_micros);
                        uint("p99_micros", e.p99_micros);
                        uint("max_micros", e.max_micros);
                        Value::Object(obj)
                    })
                    .collect(),
            ),
        );
        Value::Object(doc)
    }

    fn absorb(&mut self, other: ReplayReport) {
        self.requests += other.requests;
        self.matched += other.matched;
        self.mismatched += other.mismatched;
        self.hits += other.hits;
        self.misses += other.misses;
        self.sheds += other.sheds;
        self.transport_errors += other.transport_errors;
        for detail in other.mismatch_details {
            if self.mismatch_details.len() < MAX_MISMATCH_DETAILS {
                self.mismatch_details.push(detail);
            }
        }
    }
}

/// The canonical 20-request smoke mix — what `replaygen --record`
/// issues and what the committed golden tape fixture pins. Each item
/// is `(method, target, body)`. The mix deliberately covers every
/// endpoint, exact repeats (whose recorded digests must equal their
/// first occurrence's), defaulted parameters, a malformed request
/// (`400`) and an unknown path (`404`) — errors are deterministic
/// responses too, and a replay must reproduce them byte-for-byte.
#[must_use]
pub fn smoke_mix() -> Vec<(&'static str, String, String)> {
    let get = |target: &str| ("GET", target.to_owned(), String::new());
    let post = |target: &str, body: &str| ("POST", target.to_owned(), body.to_owned());
    vec![
        get("/closed_form?k=3&f=1"),
        get("/closed_form?m=3&k=4&f=1"),
        get("/closed_form?eta=1.5"),
        post("/evaluate", "{\"m\":2,\"k\":3,\"f\":1,\"horizon\":2000}"),
        post("/evaluate", "{\"m\":2,\"k\":3,\"f\":1,\"horizon\":2000}"),
        post("/evaluate", "{\"m\":3,\"k\":4,\"f\":1,\"horizon\":1000}"),
        post("/evaluate", "{\"m\":2,\"k\":5,\"f\":2,\"horizon\":1000}"),
        post(
            "/verdict",
            "{\"m\":2,\"k\":1,\"f\":0,\"horizon\":1000,\"eps\":0.01}",
        ),
        post(
            "/verdict",
            "{\"m\":2,\"k\":3,\"f\":1,\"horizon\":1000,\"eps\":0.01}",
        ),
        post(
            "/montecarlo",
            "{\"m\":2,\"k\":3,\"f\":1,\"horizon\":1000,\"samples\":500,\"seed\":7}",
        ),
        post(
            "/montecarlo",
            "{\"m\":2,\"k\":3,\"f\":1,\"horizon\":1000,\"samples\":500,\"seed\":7}",
        ),
        post(
            "/montecarlo",
            "{\"m\":2,\"k\":4,\"f\":1,\"horizon\":1000,\"samples\":500,\"seed\":11,\
             \"faults\":\"iid\",\"p\":0.2}",
        ),
        get("/closed_form?k=5&f=0"),
        post("/evaluate", "{\"m\":2,\"k\":1,\"f\":0,\"horizon\":500}"),
        post("/campaign", "{\"id\":\"e2\",\"max_k\":3}"),
        post("/evaluate", "{\"m\":4,\"k\":3,\"f\":0,\"horizon\":1000}"),
        get("/closed_form?k=3&f=1"),
        post("/evaluate", "{\"k\":2,\"f\":0}"),
        post(
            "/montecarlo",
            "{\"m\":2,\"k\":3,\"f\":1,\"faults\":\"bogus\"}",
        ),
        get("/no_such_endpoint"),
    ]
}

/// Replays `tape` against the server at `addr` with `concurrency`
/// persistent connections.
///
/// # Errors
///
/// Returns a message if no worker could connect at all (individual
/// request failures are counted, not fatal).
pub fn replay(addr: &str, tape: &Tape, concurrency: usize) -> Result<ReplayReport, String> {
    let concurrency = concurrency.max(1);
    let ordered = tape.in_tick_order();

    // per-endpoint (path sans query) latency histograms, shared
    // lock-free across workers, same bucketing as the live /metrics tier
    fn path_part(target: &str) -> &str {
        target.split('?').next().unwrap_or(target)
    }
    let mut paths: Vec<String> = Vec::new();
    let path_of: Vec<usize> = ordered
        .iter()
        .map(|entry| {
            let path = path_part(&entry.target);
            match paths.iter().position(|p| p == path) {
                Some(idx) => idx,
                None => {
                    paths.push(path.to_owned());
                    paths.len() - 1
                }
            }
        })
        .collect();
    let hists: Vec<LatencyHistogram> = paths.iter().map(|_| LatencyHistogram::new()).collect();
    let started = Instant::now();

    let partials = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for worker in 0..concurrency {
            let ordered = &ordered;
            let path_of = &path_of;
            let hists = &hists;
            joins.push(scope.spawn(move || {
                let mut part = ReplayReport::default();
                let mut client: Option<HttpClient> = None;
                for (idx, entry) in ordered.iter().enumerate().skip(worker).step_by(concurrency) {
                    part.requests += 1;
                    let connected = match client.take() {
                        Some(c) => Some(c),
                        None => HttpClient::connect(addr).ok(),
                    };
                    let Some(mut c) = connected else {
                        part.transport_errors += 1;
                        continue;
                    };
                    let sent = Instant::now();
                    let outcome = c.request(&entry.method, &entry.target, Some(&entry.body));
                    hists[path_of[idx]].record(sent.elapsed().as_micros() as u64);
                    match outcome {
                        Ok((status, body)) => {
                            client = Some(c);
                            if status == 503 {
                                part.sheds += 1;
                                continue;
                            }
                            if status == 200 {
                                if body.starts_with("{\"cached\":true") {
                                    part.hits += 1;
                                } else {
                                    part.misses += 1;
                                }
                            }
                            if entry.matches(status, &body) {
                                part.matched += 1;
                            } else {
                                part.mismatched += 1;
                                if part.mismatch_details.len() < MAX_MISMATCH_DETAILS {
                                    part.mismatch_details.push(format!(
                                        "tick {}: {} {} expected status {} digest {}, \
                                         got status {} body {:.120}",
                                        entry.tick,
                                        entry.method,
                                        entry.target,
                                        entry.status,
                                        entry.digest,
                                        status,
                                        body
                                    ));
                                }
                            }
                        }
                        Err(_) => {
                            // drop the broken connection; reconnect lazily
                            part.transport_errors += 1;
                        }
                    }
                }
                part
            }));
        }
        joins
            .into_iter()
            .map(|j| j.join().map_err(|_| "replay worker panicked".to_owned()))
            .collect::<Result<Vec<_>, String>>()
    })?;

    let mut report = ReplayReport::default();
    for part in partials {
        report.absorb(part);
    }
    report.wall_micros = started.elapsed().as_micros() as u64;
    report.endpoints = paths
        .iter()
        .zip(&hists)
        .filter(|(_, hist)| hist.count() > 0)
        .map(|(path, hist)| {
            let snap = hist.snapshot();
            EndpointLatency {
                endpoint: path.trim_start_matches('/').to_owned(),
                requests: snap.count,
                p50_micros: snap.percentile(50),
                p90_micros: snap.percentile(90),
                p95_micros: snap.percentile(95),
                p99_micros: snap.percentile(99),
                max_micros: snap.max,
            }
        })
        .collect();
    if !tape.entries.is_empty() && report.transport_errors == report.requests {
        return Err(format!("every replayed request against {addr} failed"));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_empty_reports() {
        let report = ReplayReport::default();
        assert_eq!(report.hit_rate(), 0.0);
        assert_eq!(report.shed_rate(), 0.0);
        assert_eq!(
            report.fingerprint(),
            "requests=0 matched=0 mismatched=0 hits=0 misses=0 sheds=0 transport_errors=0"
        );
    }

    #[test]
    fn json_report_has_the_pinned_fields() {
        let report = ReplayReport {
            requests: 10,
            matched: 9,
            mismatched: 0,
            hits: 5,
            misses: 4,
            sheds: 1,
            transport_errors: 0,
            wall_micros: 1000,
            mismatch_details: Vec::new(),
            endpoints: vec![EndpointLatency {
                endpoint: "evaluate".to_owned(),
                requests: 10,
                p50_micros: 127,
                p90_micros: 255,
                p95_micros: 255,
                p99_micros: 511,
                max_micros: 400,
            }],
        };
        let doc = report.to_json();
        assert_eq!(doc.get("requests").and_then(Value::as_u64), Some(10));
        assert_eq!(doc.get("sheds").and_then(Value::as_u64), Some(1));
        let endpoints = doc.get("endpoints").and_then(Value::as_array).unwrap();
        assert_eq!(endpoints.len(), 1);
        assert_eq!(
            endpoints[0].get("endpoint"),
            Some(&Value::String("evaluate".to_owned()))
        );
        assert_eq!(
            endpoints[0].get("p99_micros").and_then(Value::as_u64),
            Some(511)
        );
        let hit_rate = doc.get("hit_rate").and_then(Value::as_f64).unwrap();
        assert!((hit_rate - 5.0 / 9.0).abs() < 1e-12);
        let shed_rate = doc.get("shed_rate").and_then(Value::as_f64).unwrap();
        assert!((shed_rate - 0.1).abs() < 1e-12);
        assert!(doc.get("rps").and_then(Value::as_f64).unwrap() > 0.0);
    }

    #[test]
    fn fingerprints_ignore_wall_clock() {
        let mut a = ReplayReport {
            requests: 4,
            matched: 4,
            hits: 2,
            misses: 2,
            wall_micros: 10,
            ..ReplayReport::default()
        };
        let b = ReplayReport {
            wall_micros: 99_999,
            ..a.clone()
        };
        assert_eq!(a.fingerprint(), b.fingerprint());
        a.mismatched = 1;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
