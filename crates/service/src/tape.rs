//! The record/replay tape: a line-delimited JSON capture of request
//! traffic with pinned response digests.
//!
//! Every payload this system serves is deterministic and byte-identical
//! by construction, so a recorded request stream is *verifiable*: each
//! tape line carries the request (method, target, body, arrival tick)
//! plus the digest of the response it got, and a replay harness can
//! demand bit-for-bit agreement from any later fleet — load testing
//! becomes a regression test instead of a flaky benchmark.
//!
//! One wrinkle: response bodies wrap the deterministic payload as
//! `{"cached":<bool>,"result":…}`, and the `cached` flag legitimately
//! differs between the recording run (a cold miss) and a warm replay (a
//! hit). Digests therefore cover the [`normalize_body`] form — the
//! `cached` flag forced to `false` — which *is* request-determined.
//! Router-local endpoints (`/healthz`, `/stats`) report live state and
//! are excluded from tapes entirely (see [`is_recordable`]).
//!
//! The wire format is one JSON object per line with a fixed field
//! order (`v`, `tick`, `method`, `target`, `body`, `status`, `digest`,
//! `len`) so a tape round-trips through parse → re-serialize
//! byte-identically; a committed golden fixture pins the format.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use raysearch_core::stable_hash64;
use serde_json::{Map, Value};

use crate::http::Response;

/// The tape format version; bumped on any incompatible change.
pub const TAPE_VERSION: u64 = 1;

/// Whether requests to `path` belong on a tape. `/healthz`, `/stats`,
/// `/metrics`, `/debug/slow` and the `/debug/trace` family answer with
/// live, router-local state (uptime, counters, histograms, sampled
/// span trees), so their bytes are not request-determined and
/// recording them would make every replay fail verification. The
/// `/jobs` family is excluded for the same reason from the other side:
/// submissions mint fresh ids and polls race the compute worker, so
/// neither the envelope bytes nor the observed state are
/// request-determined (the *payload* a job computes is still covered —
/// via the synchronous endpoint it shares bytes with). Trace
/// propagation never interferes with tapes at all: digests cover the
/// (normalized) response *body* only, and the `x-raysearch-trace` echo
/// lives in response headers.
#[must_use]
pub fn is_recordable(path: &str) -> bool {
    !matches!(path, "/healthz" | "/stats" | "/metrics" | "/debug/slow")
        && !path.starts_with("/debug/trace")
        && !path.starts_with("/jobs")
}

/// Forces the `cached` flag of a wrapped response body to `false`, so
/// the recording run (a cold miss) and any warm replay digest
/// identically. Bodies without the wrapper (errors, non-wrapped
/// endpoints) pass through untouched.
#[must_use]
pub fn normalize_body(body: &str) -> String {
    match body.strip_prefix("{\"cached\":true,") {
        Some(rest) => format!("{{\"cached\":false,{rest}"),
        None => body.to_owned(),
    }
}

/// The digest a tape pins for one response: the pinned FNV-1a hash of
/// the [normalized](normalize_body) body, as 16 lowercase hex digits.
#[must_use]
pub fn digest_body(body: &str) -> String {
    format!("{:016x}", stable_hash64(normalize_body(body).as_bytes()))
}

/// One recorded request/response pair — one line of a tape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TapeEntry {
    /// Arrival order at the recorder (0-based, dense). Replay sorts by
    /// tick, so a tape's ordering survives serialization.
    pub tick: u64,
    /// The request method (`GET`, `POST`, …).
    pub method: String,
    /// The request target: path plus query string, exactly as routable
    /// (`/closed_form?k=3&f=1`).
    pub target: String,
    /// The request body (UTF-8; this API speaks JSON).
    pub body: String,
    /// The HTTP status the recording run observed.
    pub status: u16,
    /// [`digest_body`] of the observed response.
    pub digest: String,
    /// Byte length of the normalized response body (a cheap second
    /// check, and a human-readable size column).
    pub len: u64,
}

impl TapeEntry {
    /// Builds the entry for one observed exchange, assigning `tick`.
    #[must_use]
    pub fn observe(tick: u64, method: &str, target: &str, body: &str, response: &Response) -> Self {
        TapeEntry {
            tick,
            method: method.to_owned(),
            target: target.to_owned(),
            body: body.to_owned(),
            status: response.status,
            digest: digest_body(&response.body),
            len: normalize_body(&response.body).len() as u64,
        }
    }

    /// Whether a replayed response agrees with this entry byte-for-byte
    /// (modulo the `cached` flag, which is not request-determined).
    #[must_use]
    pub fn matches(&self, status: u16, body: &str) -> bool {
        status == self.status
            && digest_body(body) == self.digest
            && normalize_body(body).len() as u64 == self.len
    }

    /// Serializes the entry as its canonical tape line (no trailing
    /// newline). Field order is fixed, so `from_line` → `to_line`
    /// round-trips a canonical line byte-identically.
    #[must_use]
    pub fn to_line(&self) -> String {
        let mut doc = Map::new();
        doc.insert(
            "v".to_owned(),
            serde_json::to_value(TAPE_VERSION).expect("u64 serializes"),
        );
        doc.insert(
            "tick".to_owned(),
            serde_json::to_value(self.tick).expect("u64 serializes"),
        );
        doc.insert("method".to_owned(), Value::String(self.method.clone()));
        doc.insert("target".to_owned(), Value::String(self.target.clone()));
        doc.insert("body".to_owned(), Value::String(self.body.clone()));
        doc.insert(
            "status".to_owned(),
            serde_json::to_value(u64::from(self.status)).expect("u64 serializes"),
        );
        doc.insert("digest".to_owned(), Value::String(self.digest.clone()));
        doc.insert(
            "len".to_owned(),
            serde_json::to_value(self.len).expect("u64 serializes"),
        );
        Value::Object(doc).to_json_string()
    }

    /// Parses one tape line. Strict by design: a version mismatch, a
    /// missing field, or an *extra* field is an error — format drift
    /// must fail loudly, not deserialize into something almost right.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn from_line(line: &str) -> Result<TapeEntry, String> {
        let doc: Value = serde_json::from_str(line).map_err(|e| format!("bad tape line: {e}"))?;
        let obj = doc
            .as_object()
            .ok_or_else(|| format!("tape line is not an object: {line:?}"))?;
        let field = |name: &str| {
            obj.get(name)
                .ok_or_else(|| format!("tape line missing {name:?}: {line:?}"))
        };
        let uint = |name: &str| {
            field(name)?
                .as_u64()
                .ok_or_else(|| format!("tape field {name:?} is not an integer: {line:?}"))
        };
        let text = |name: &str| {
            field(name).map(|v| {
                v.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| format!("tape field {name:?} is not a string: {line:?}"))
            })?
        };
        let version = uint("v")?;
        if version != TAPE_VERSION {
            return Err(format!(
                "tape version {version} is not the supported {TAPE_VERSION}"
            ));
        }
        if obj.len() != 8 {
            let known = [
                "v", "tick", "method", "target", "body", "status", "digest", "len",
            ];
            let extras: Vec<&str> = obj
                .iter()
                .map(|(k, _)| k.as_str())
                .filter(|k| !known.contains(k))
                .collect();
            return Err(format!("tape line has unknown fields {extras:?}: {line:?}"));
        }
        let status = uint("status")?;
        let status = u16::try_from(status)
            .map_err(|_| format!("tape status {status} is not a valid HTTP status"))?;
        Ok(TapeEntry {
            tick: uint("tick")?,
            method: text("method")?,
            target: text("target")?,
            body: text("body")?,
            status,
            digest: text("digest")?,
            len: uint("len")?,
        })
    }
}

/// A loaded tape: the recorded entries, in file order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Tape {
    /// The recorded entries.
    pub entries: Vec<TapeEntry>,
}

impl Tape {
    /// Loads a tape from `path`, skipping blank lines.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and the first malformed line (with its
    /// 1-based line number).
    pub fn load(path: &Path) -> Result<Tape, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let mut entries = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            entries.push(
                TapeEntry::from_line(line)
                    .map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))?,
            );
        }
        Ok(Tape { entries })
    }

    /// Serializes the whole tape in canonical form (one line per entry,
    /// `\n`-terminated).
    #[must_use]
    pub fn canonical_text(&self) -> String {
        let mut out = String::new();
        for entry in &self.entries {
            out.push_str(&entry.to_line());
            out.push('\n');
        }
        out
    }

    /// Writes the tape to `path` in canonical form.
    ///
    /// # Errors
    ///
    /// Propagates the write failure.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        std::fs::write(path, self.canonical_text())
            .map_err(|e| format!("write {}: {e}", path.display()))
    }

    /// The entries sorted by arrival tick (stably), the order a replay
    /// harness issues them in.
    #[must_use]
    pub fn in_tick_order(&self) -> Vec<&TapeEntry> {
        let mut ordered: Vec<&TapeEntry> = self.entries.iter().collect();
        ordered.sort_by_key(|e| e.tick);
        ordered
    }
}

/// The recording side: hands out dense arrival ticks and appends
/// entries to an open tape file (line-buffered, flushed per entry so a
/// killed recorder loses at most the in-flight line).
#[derive(Debug)]
pub struct TapeRecorder {
    writer: Mutex<BufWriter<File>>,
    tick: AtomicU64,
}

impl TapeRecorder {
    /// Creates (truncating) the tape file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the create failure.
    pub fn create(path: &Path) -> std::io::Result<TapeRecorder> {
        Ok(TapeRecorder {
            writer: Mutex::new(BufWriter::new(File::create(path)?)),
            tick: AtomicU64::new(0),
        })
    }

    /// Assigns the next arrival tick (dense, starting at 0).
    pub fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Appends one entry to the tape.
    pub fn record(&self, entry: &TapeEntry) {
        let mut writer = self.writer.lock();
        // best-effort: a full disk should not take the router down
        let _ = writeln!(writer, "{}", entry.to_line());
        let _ = writer.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> TapeEntry {
        TapeEntry {
            tick: 3,
            method: "POST".to_owned(),
            target: "/evaluate".to_owned(),
            body: "{\"m\":2,\"k\":3,\"f\":1}".to_owned(),
            status: 200,
            digest: "00d1e2f3a4b5c697".to_owned(),
            len: 42,
        }
    }

    #[test]
    fn line_round_trips_byte_identically() {
        let line = entry().to_line();
        let parsed = TapeEntry::from_line(&line).unwrap();
        assert_eq!(parsed, entry());
        assert_eq!(parsed.to_line(), line);
    }

    #[test]
    fn line_has_the_pinned_field_order() {
        let line = entry().to_line();
        assert_eq!(
            line,
            "{\"v\":1,\"tick\":3,\"method\":\"POST\",\"target\":\"/evaluate\",\
             \"body\":\"{\\\"m\\\":2,\\\"k\\\":3,\\\"f\\\":1}\",\"status\":200,\
             \"digest\":\"00d1e2f3a4b5c697\",\"len\":42}"
        );
    }

    #[test]
    fn parse_rejects_drifted_formats() {
        // wrong version
        let drift = entry().to_line().replacen("\"v\":1", "\"v\":2", 1);
        assert!(TapeEntry::from_line(&drift)
            .unwrap_err()
            .contains("version"));
        // missing field
        let missing = "{\"v\":1,\"tick\":0}";
        assert!(TapeEntry::from_line(missing).is_err());
        // extra field
        let extra = entry()
            .to_line()
            .replacen("\"len\":42}", "\"len\":42,\"zzz\":1}", 1);
        assert!(TapeEntry::from_line(&extra)
            .unwrap_err()
            .contains("unknown fields"));
        // not JSON at all
        assert!(TapeEntry::from_line("not json").is_err());
    }

    #[test]
    fn normalization_forces_the_cached_flag() {
        let cold = "{\"cached\":false,\"result\":{\"a\":9}}";
        let warm = "{\"cached\":true,\"result\":{\"a\":9}}";
        assert_eq!(normalize_body(warm), cold);
        assert_eq!(normalize_body(cold), cold);
        assert_eq!(digest_body(warm), digest_body(cold));
        // errors have no wrapper and pass through untouched
        let err = "{\"error\":\"nope\"}";
        assert_eq!(normalize_body(err), err);
    }

    #[test]
    fn observe_then_match_accepts_both_temperatures() {
        let cold = Response::ok("{\"cached\":false,\"result\":{\"a\":9}}");
        let entry = TapeEntry::observe(0, "GET", "/closed_form?k=1&f=0", "", &cold);
        assert!(entry.matches(200, "{\"cached\":false,\"result\":{\"a\":9}}"));
        assert!(entry.matches(200, "{\"cached\":true,\"result\":{\"a\":9}}"));
        assert!(!entry.matches(200, "{\"cached\":false,\"result\":{\"a\":8}}"));
        assert!(!entry.matches(503, "{\"cached\":false,\"result\":{\"a\":9}}"));
    }

    #[test]
    fn recorder_writes_loadable_tapes_with_dense_ticks() {
        let dir = std::env::temp_dir().join(format!("raysearch-tape-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unit.tape");
        let recorder = TapeRecorder::create(&path).unwrap();
        assert_eq!(recorder.next_tick(), 0);
        assert_eq!(recorder.next_tick(), 1);
        let mut e = entry();
        e.tick = 0;
        recorder.record(&e);
        e.tick = 1;
        recorder.record(&e);
        let tape = Tape::load(&path).unwrap();
        assert_eq!(tape.entries.len(), 2);
        assert_eq!(tape.entries[0].tick, 0);
        assert_eq!(tape.entries[1].tick, 1);
        // canonical save equals what the recorder streamed
        let streamed = std::fs::read_to_string(&path).unwrap();
        assert_eq!(tape.canonical_text(), streamed);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn router_local_paths_are_not_recordable() {
        assert!(!is_recordable("/healthz"));
        assert!(!is_recordable("/stats"));
        assert!(!is_recordable("/metrics"));
        assert!(!is_recordable("/debug/slow"));
        assert!(!is_recordable("/debug/trace"));
        assert!(!is_recordable("/debug/trace/00000000000000aa"));
        // jobs are stateful (submit mutates, polls race the worker), so
        // their bytes are not request-determined
        assert!(!is_recordable("/jobs"));
        assert!(!is_recordable("/jobs/00000000000000aa"));
        assert!(is_recordable("/evaluate"));
        assert!(is_recordable("/closed_form"));
        assert!(is_recordable("/no_such_endpoint"));
    }

    #[test]
    fn tick_order_is_stable() {
        let mut tape = Tape::default();
        for tick in [2u64, 0, 1] {
            let mut e = entry();
            e.tick = tick;
            tape.entries.push(e);
        }
        let ticks: Vec<u64> = tape.in_tick_order().iter().map(|e| e.tick).collect();
        assert_eq!(ticks, vec![0, 1, 2]);
    }
}
