//! A minimal HTTP/1.1 client for the probe, the load generator and the
//! integration tests — the same hand-rolled layer as the server, from
//! the other side of the socket.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use serde_json::Value;

/// A full decoded response: status, headers (names lowercased), body.
pub type FullResponse = (u16, Vec<(String, String)>, String);

/// A persistent (keep-alive) connection to a `raysearchd` server.
#[derive(Debug)]
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpClient {
    /// Connects to `addr` (e.g. `127.0.0.1:8077`).
    ///
    /// # Errors
    ///
    /// Propagates connect/configure failures.
    pub fn connect(addr: &str) -> std::io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        HttpClient::from_stream(stream, Duration::from_secs(60))
    }

    /// Connects to `addr` with `timeout` bounding both the TCP connect
    /// and every subsequent read — the health-check variant, where a
    /// wedged backend must fail the check, not wedge the checker.
    ///
    /// # Errors
    ///
    /// Propagates connect/configure failures (including the timeout).
    pub fn connect_with_timeout(addr: &str, timeout: Duration) -> std::io::Result<HttpClient> {
        let sock: std::net::SocketAddr = addr.parse().map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("bad address {addr:?}: {e}"),
            )
        })?;
        let stream = TcpStream::connect_timeout(&sock, timeout)?;
        HttpClient::from_stream(stream, timeout)
    }

    fn from_stream(stream: TcpStream, read_timeout: Duration) -> std::io::Result<HttpClient> {
        stream.set_read_timeout(Some(read_timeout))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(HttpClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Issues one request and reads the full response, reusing the
    /// connection. `body = Some(json)` sends a POST-style entity.
    ///
    /// # Errors
    ///
    /// Returns an error on transport failure or a malformed response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        self.request_with_headers(method, path, body, &[])
            .map(|(status, _headers, body)| (status, body))
    }

    /// Like [`HttpClient::request`], but also sends `extra_headers` on
    /// the request and returns the response headers (names lowercased)
    /// alongside the status and body — the trace-propagation variant.
    ///
    /// # Errors
    ///
    /// Returns an error on transport failure or a malformed response.
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        extra_headers: &[(&str, &str)],
    ) -> std::io::Result<FullResponse> {
        let body = body.unwrap_or("");
        // single write: see Response::write_to on Nagle interactions
        let mut wire = format!(
            "{method} {path} HTTP/1.1\r\nHost: raysearchd\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
            body.len()
        );
        for (name, value) in extra_headers {
            wire.push_str(name);
            wire.push_str(": ");
            wire.push_str(value);
            wire.push_str("\r\n");
        }
        wire.push_str("\r\n");
        wire.push_str(body);
        self.writer.write_all(wire.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<FullResponse> {
        let bad = |why: String| std::io::Error::new(std::io::ErrorKind::InvalidData, why);
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(bad("connection closed before status line".to_owned()));
        }
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad(format!("bad status line {status_line:?}")))?;

        let mut headers = Vec::new();
        let mut content_length: Option<usize> = None;
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(bad("connection closed inside headers".to_owned()));
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim();
                if name == "content-length" {
                    content_length = value.parse().ok();
                }
                headers.push((name, value.to_owned()));
            }
        }
        let length =
            content_length.ok_or_else(|| bad("response without Content-Length".to_owned()))?;
        let mut body = vec![0u8; length];
        self.reader.read_exact(&mut body)?;
        String::from_utf8(body)
            .map(|text| (status, headers, text))
            .map_err(|_| bad("response body is not UTF-8".to_owned()))
    }
}

/// One-shot convenience: connect, request, parse the body as JSON.
///
/// # Errors
///
/// Returns a human-readable message on transport, HTTP or JSON failure.
pub fn fetch_json(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, Value), String> {
    let mut client = HttpClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let (status, text) = client
        .request(method, path, body)
        .map_err(|e| format!("{method} {path}: {e}"))?;
    let value = serde_json::from_str(&text)
        .map_err(|e| format!("{method} {path}: non-JSON body {text:?}: {e}"))?;
    Ok((status, value))
}
