//! `raysearch-router` — the consistent-hash router over `raysearchd`
//! backends.
//!
//! ```text
//! raysearch-router [--backends N | --join ADDR ...] [--addr HOST:PORT]
//!                  [--record PATH] [--port-file PATH] [--state-dir DIR]
//!                  [--workers N] [--queue N]
//! raysearch-router --probe
//! ```
//!
//! Serve mode spawns `N` `raysearchd` child backends on ephemeral
//! ports (or joins already-running ones via `--join`), rendezvous-
//! routes every request across them, and serves the router's own
//! `/healthz` and aggregated `/stats`. `--record` captures forwarded
//! traffic to a line-delimited JSON tape that `replaygen` can verify
//! byte-for-byte later. `--probe` runs the self-hosted router smoke
//! test (checks 16–21, after `raysearchd --probe`'s 15) against an
//! in-process fleet and exits 0 on success.

use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use raysearch_service::backends::{raysearchd_bin, BackendFleet};
use raysearch_service::probe::run_router_probe;
use raysearch_service::route::{spawn_health_thread, BackendSpec, RouterState};
use raysearch_service::server::{Server, ServerConfig};
use raysearch_service::tape::TapeRecorder;

const USAGE: &str = "\
usage: raysearch-router [mode] [options]

modes (default: serve):
  --probe            self-hosted router smoke test (in-process fleet),
                     exits 0 if every check passes

serve options:
  --backends N       spawn N raysearchd child backends (default 2)
  --join ADDR        route across an existing backend at ADDR instead of
                     spawning (repeatable)
  --addr HOST:PORT   router bind address (default 127.0.0.1:0)
  --record PATH      record forwarded traffic to a tape at PATH
  --port-file PATH   write the router's bound HOST:PORT to PATH
  --state-dir DIR    directory for backend port files
                     (default: a per-process temp directory)
  --workers N        router worker threads (default: max(4, cores))
  --queue N          bounded accept-queue depth (default 128)
  --slow-log-micros N  requests slower than N microseconds land in the
                     GET /debug/slow ring buffer (0 logs everything;
                     default 100000)
  --trace-sample N   keep ~1-in-N span traces for GET /debug/trace/{id}
                     (slow requests are always kept; 1 keeps every
                     trace; default 64)

--slow-log-micros and --trace-sample are forwarded to spawned backends
so the whole fleet shares one sampling policy (joined backends keep
their own configuration)

the raysearchd binary for spawned backends is found next to this
executable, or via the RAYSEARCHD_BIN environment variable

  --help             show this help";

#[derive(Debug, Default)]
struct Cli {
    probe: bool,
    backends: Option<usize>,
    join: Vec<String>,
    addr: Option<String>,
    record: Option<PathBuf>,
    port_file: Option<String>,
    state_dir: Option<PathBuf>,
    workers: Option<usize>,
    queue: Option<usize>,
    slow_log_micros: Option<u64>,
    trace_sample: Option<u64>,
}

fn parse_args(args: &[String]) -> Result<Option<Cli>, String> {
    let mut cli = Cli::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        let parse_count = |flag: &str, v: String| {
            v.parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| format!("{flag} expects an integer >= 1"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--probe" => cli.probe = true,
            "--backends" => {
                cli.backends = Some(parse_count("--backends", value_of("--backends")?)?);
            }
            "--join" => cli.join.push(value_of("--join")?),
            "--addr" => cli.addr = Some(value_of("--addr")?),
            "--record" => cli.record = Some(PathBuf::from(value_of("--record")?)),
            "--port-file" => cli.port_file = Some(value_of("--port-file")?),
            "--state-dir" => cli.state_dir = Some(PathBuf::from(value_of("--state-dir")?)),
            "--workers" => cli.workers = Some(parse_count("--workers", value_of("--workers")?)?),
            "--queue" => cli.queue = Some(parse_count("--queue", value_of("--queue")?)?),
            "--slow-log-micros" => {
                // 0 is meaningful here (log every request), so this
                // flag does not go through parse_count's >= 1 floor
                cli.slow_log_micros = Some(
                    value_of("--slow-log-micros")?
                        .parse::<u64>()
                        .map_err(|_| "--slow-log-micros expects an integer >= 0".to_owned())?,
                );
            }
            "--trace-sample" => {
                cli.trace_sample = Some(
                    value_of("--trace-sample")?
                        .parse::<u64>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| "--trace-sample expects an integer >= 1".to_owned())?,
                );
            }
            flag => return Err(format!("unknown flag {flag}")),
        }
    }
    if cli.backends.is_some() && !cli.join.is_empty() {
        return Err("--backends and --join are mutually exclusive".to_owned());
    }
    Ok(Some(cli))
}

fn serve(cli: &Cli) -> Result<(), String> {
    // the fleet handle must outlive the server: dropping it kills the
    // children
    let (_fleet, specs): (Option<BackendFleet>, Vec<BackendSpec>) = if cli.join.is_empty() {
        let n = cli.backends.unwrap_or(2);
        let dir = cli.state_dir.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!("raysearch-router-{}", std::process::id()))
        });
        // spawned backends inherit the fleet-wide observability knobs:
        // trace assembly only works if the backend sampled the same
        // requests the router did
        let mut extra = Vec::new();
        if let Some(micros) = cli.slow_log_micros {
            extra.push("--slow-log-micros".to_owned());
            extra.push(micros.to_string());
        }
        if let Some(sample) = cli.trace_sample {
            extra.push("--trace-sample".to_owned());
            extra.push(sample.to_string());
        }
        let fleet = BackendFleet::spawn_with_args(&raysearchd_bin()?, n, &dir, &extra)?;
        let addrs = fleet.wait_ready(Duration::from_secs(10))?;
        println!(
            "raysearch-router: spawned {n} backends ({})",
            addrs.join(", ")
        );
        let specs = fleet.specs();
        (Some(fleet), specs)
    } else {
        let specs = cli
            .join
            .iter()
            .enumerate()
            .map(|(i, addr)| BackendSpec::fixed(&format!("backend-{i}"), addr))
            .collect();
        (None, specs)
    };

    let recorder = match &cli.record {
        Some(path) => Some(
            TapeRecorder::create(path).map_err(|e| format!("create {}: {e}", path.display()))?,
        ),
        None => None,
    };
    let state = Arc::new(RouterState::new(specs, recorder));
    if let Some(micros) = cli.slow_log_micros {
        state.telemetry().set_slow_threshold(micros);
    }
    if let Some(n) = cli.trace_sample {
        state.telemetry().set_trace_sample(n);
    }
    let healthy = state.check_backends_now();
    println!(
        "raysearch-router: {healthy}/{} backends healthy",
        state.backend_ids().len()
    );

    let mut cfg = ServerConfig {
        addr: cli.addr.clone().unwrap_or_else(|| "127.0.0.1:0".to_owned()),
        ..ServerConfig::default()
    };
    if let Some(workers) = cli.workers {
        cfg.workers = workers;
    }
    if let Some(queue) = cli.queue {
        cfg.queue_depth = queue;
    }
    let server = Server::bind_with(cfg.clone(), Arc::clone(&state))
        .map_err(|e| format!("bind {}: {e}", cfg.addr))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    println!(
        "raysearch-router listening on {addr} ({} workers)",
        cfg.workers
    );
    if let Some(path) = &cli.port_file {
        std::fs::write(path, format!("{addr}\n")).map_err(|e| format!("write {path}: {e}"))?;
    }
    let stop = Arc::new(AtomicBool::new(false));
    let _health = spawn_health_thread(Arc::clone(&state), Duration::from_millis(250), stop);
    server.spawn().join();
    Ok(())
}

fn probe() -> Result<(), String> {
    let lines = run_router_probe()?;
    for line in &lines {
        println!("probe ok - {line}");
    }
    println!("router probe: all {} checks passed", lines.len());
    Ok(())
}

fn main() {
    let parsed = match parse_args(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(Some(cli)) => cli,
        Ok(None) => {
            println!("{USAGE}");
            return;
        }
        Err(msg) => {
            eprintln!("raysearch-router: {msg}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let outcome = if parsed.probe {
        probe()
    } else {
        serve(&parsed)
    };
    if let Err(msg) = outcome {
        eprintln!("raysearch-router: {msg}");
        std::process::exit(1);
    }
}
