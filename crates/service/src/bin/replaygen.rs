//! `replaygen` — deterministic record/replay load harness.
//!
//! ```text
//! replaygen --record PATH [--requests N] [--backends N]
//! replaygen --tape PATH [--addr ADDR | --backends N] [--concurrency C]
//!           [--passes P] [--report PATH] [--max-shed-rate F]
//!           [--require-warm-hits]
//! ```
//!
//! Record mode spins up a fresh router fleet, streams the canonical
//! smoke mix through it (cycled to `--requests`), and writes the tape
//! — requests plus response digests — to `PATH`. Replay mode re-issues
//! a tape in tick order at `--concurrency`, `--passes` times against
//! one fleet (pass 1 is cold, later passes warm), verifies every
//! response byte-identical to the tape's digests, and emits a JSON
//! report (per-pass rps / hit rate / shed rate / counters). Gates for
//! CI: any digest mismatch or transport error fails; `--max-shed-rate`
//! bounds the shed fraction; `--require-warm-hits` demands a non-zero
//! cache-hit rate on the final pass.
//!
//! `--export-trace PATH` additionally dumps every span trace the
//! router kept during the replay — assembled across tiers via the
//! router's `GET /debug/trace/{id}` — as Chrome trace-event JSON
//! (catapult format), loadable in Perfetto or `chrome://tracing`. A
//! spawned fleet runs with sampling forced always-on so the timeline
//! covers the whole replay.

use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use raysearch_core::trace::chrome_trace_json;
use raysearch_core::SpanData;
use raysearch_service::backends::{raysearchd_bin, BackendFleet};
use raysearch_service::client::HttpClient;
use raysearch_service::replay::{replay, smoke_mix, ReplayReport};
use raysearch_service::route::{spawn_health_thread, RouterState};
use raysearch_service::server::{Server, ServerConfig, ServerHandle};
use raysearch_service::tape::{Tape, TapeRecorder};
use serde_json::{Map, Value};

const USAGE: &str = "\
usage: replaygen (--record PATH | --tape PATH) [options]

record mode:
  --record PATH      record the smoke mix through a fresh fleet into PATH
  --requests N       total requests to record (default: one mix pass)

replay mode:
  --tape PATH        the tape to replay and verify
  --addr ADDR        replay against a running router/backend at ADDR
                     (default: spawn a fresh fleet)
  --concurrency C    concurrent replay connections (default 4)
  --passes P         replay passes against the same fleet (default 2:
                     pass 1 cold, pass 2 warm)
  --report PATH      also write the JSON report to PATH
  --max-shed-rate F  fail if any pass sheds more than this fraction
  --require-warm-hits  fail if the final pass has a zero hit rate
  --export-trace PATH  dump the router's assembled span traces as
                     Chrome trace-event JSON (open in Perfetto or
                     chrome://tracing); a spawned fleet samples
                     always-on, an --addr fleet exports whatever it kept

common:
  --backends N       backends in a spawned fleet (default 2)

the raysearchd binary for spawned backends is found next to this
executable, or via the RAYSEARCHD_BIN environment variable

  --help             show this help";

#[derive(Debug, Default)]
struct Cli {
    record: Option<PathBuf>,
    tape: Option<PathBuf>,
    addr: Option<String>,
    requests: Option<usize>,
    backends: usize,
    concurrency: usize,
    passes: usize,
    report: Option<PathBuf>,
    max_shed_rate: Option<f64>,
    require_warm_hits: bool,
    export_trace: Option<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Option<Cli>, String> {
    let mut cli = Cli {
        backends: 2,
        concurrency: 4,
        passes: 2,
        ..Cli::default()
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        let parse_count = |flag: &str, v: String| {
            v.parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| format!("{flag} expects an integer >= 1"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--record" => cli.record = Some(PathBuf::from(value_of("--record")?)),
            "--tape" => cli.tape = Some(PathBuf::from(value_of("--tape")?)),
            "--addr" => cli.addr = Some(value_of("--addr")?),
            "--requests" => {
                cli.requests = Some(parse_count("--requests", value_of("--requests")?)?);
            }
            "--backends" => cli.backends = parse_count("--backends", value_of("--backends")?)?,
            "--concurrency" => {
                cli.concurrency = parse_count("--concurrency", value_of("--concurrency")?)?;
            }
            "--passes" => cli.passes = parse_count("--passes", value_of("--passes")?)?,
            "--report" => cli.report = Some(PathBuf::from(value_of("--report")?)),
            "--max-shed-rate" => {
                let v = value_of("--max-shed-rate")?;
                let rate = v
                    .parse::<f64>()
                    .ok()
                    .filter(|r| (0.0..=1.0).contains(r))
                    .ok_or_else(|| "--max-shed-rate expects a fraction in [0, 1]".to_owned())?;
                cli.max_shed_rate = Some(rate);
            }
            "--require-warm-hits" => cli.require_warm_hits = true,
            "--export-trace" => {
                cli.export_trace = Some(PathBuf::from(value_of("--export-trace")?));
            }
            flag => return Err(format!("unknown flag {flag}")),
        }
    }
    match (&cli.record, &cli.tape) {
        (None, None) => Err("one of --record or --tape is required".to_owned()),
        (Some(_), Some(_)) => Err("--record and --tape are mutually exclusive".to_owned()),
        _ => Ok(Some(cli)),
    }
}

/// A self-spawned fleet: child backends plus an in-process router.
/// Held together so everything shuts down in one place.
struct Fleet {
    /// Keeps the children alive for the router's lifetime.
    _backends: BackendFleet,
    router: ServerHandle<RouterState>,
    stop: Arc<AtomicBool>,
    health: std::thread::JoinHandle<()>,
}

impl Fleet {
    fn spawn(
        backends: usize,
        concurrency: usize,
        recorder: Option<TapeRecorder>,
        trace_all: bool,
    ) -> Result<Fleet, String> {
        let dir = std::env::temp_dir().join(format!("replaygen-{}", std::process::id()));
        // --export-trace wants a timeline of the *whole* replay, so the
        // fleet samples every request rather than 1-in-N
        let mut extra = Vec::new();
        if trace_all {
            extra.push("--trace-sample".to_owned());
            extra.push("1".to_owned());
        }
        let fleet = BackendFleet::spawn_with_args(&raysearchd_bin()?, backends, &dir, &extra)?;
        fleet.wait_ready(Duration::from_secs(10))?;
        let state = Arc::new(RouterState::new(fleet.specs(), recorder));
        if trace_all {
            state.telemetry().set_trace_sample(1);
        }
        let healthy = state.check_backends_now();
        if healthy != backends {
            return Err(format!(
                "only {healthy}/{backends} backends came up healthy"
            ));
        }
        let stop = Arc::new(AtomicBool::new(false));
        let health = spawn_health_thread(
            Arc::clone(&state),
            Duration::from_millis(250),
            Arc::clone(&stop),
        );
        // enough router workers that `concurrency` forwarded requests
        // can block on slow backends without starving the accept queue
        let cfg = ServerConfig {
            workers: (concurrency + 4).max(8),
            ..ServerConfig::default()
        };
        let router = Server::bind_with(cfg, state)
            .map_err(|e| format!("bind router: {e}"))?
            .spawn();
        Ok(Fleet {
            _backends: fleet,
            router,
            stop,
            health,
        })
    }

    fn addr(&self) -> String {
        self.router.addr().to_string()
    }

    fn shutdown(self) {
        self.stop.store(true, std::sync::atomic::Ordering::SeqCst);
        let _ = self.health.join();
        self.router.shutdown();
    }
}

fn record(cli: &Cli, path: &Path) -> Result<(), String> {
    let recorder =
        TapeRecorder::create(path).map_err(|e| format!("create {}: {e}", path.display()))?;
    let fleet = Fleet::spawn(cli.backends, 1, Some(recorder), false)?;
    let addr = fleet.addr();

    let mix = smoke_mix();
    let total = cli.requests.unwrap_or(mix.len());
    // sequential on one keep-alive connection: arrival ticks equal mix
    // order, so recorded tapes are reproducible artifacts
    let mut client = HttpClient::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut errors = 0usize;
    for i in 0..total {
        let (method, target, body) = &mix[i % mix.len()];
        if client.request(method, target, Some(body)).is_err() {
            errors += 1;
            client = HttpClient::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
        }
    }
    fleet.shutdown();
    if errors > 0 {
        return Err(format!("{errors}/{total} recording requests failed"));
    }
    let tape = Tape::load(path)?;
    println!(
        "replaygen: recorded {} entries to {}",
        tape.entries.len(),
        path.display()
    );
    if tape.entries.len() != total {
        return Err(format!(
            "expected {total} recorded entries, found {}",
            tape.entries.len()
        ));
    }
    Ok(())
}

fn replay_mode(cli: &Cli, path: &Path) -> Result<(), String> {
    let tape = Tape::load(path)?;
    if tape.entries.is_empty() {
        return Err(format!("{} is empty", path.display()));
    }
    let (addr, fleet) = match &cli.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let fleet = Fleet::spawn(
                cli.backends,
                cli.concurrency,
                None,
                cli.export_trace.is_some(),
            )?;
            (fleet.addr(), Some(fleet))
        }
    };

    let mut passes: Vec<ReplayReport> = Vec::with_capacity(cli.passes);
    let mut outcome = Ok(());
    for pass in 1..=cli.passes {
        match replay(&addr, &tape, cli.concurrency) {
            Ok(report) => {
                eprintln!(
                    "replaygen: pass {pass}/{} {} ({:.0} rps, hit rate {:.3}, shed rate {:.4})",
                    cli.passes,
                    report.fingerprint(),
                    report.rps(),
                    report.hit_rate(),
                    report.shed_rate()
                );
                passes.push(report);
            }
            Err(e) => {
                outcome = Err(format!("pass {pass}: {e}"));
                break;
            }
        }
    }
    // export while the fleet is still up: assembly fetches backend
    // traces live through the router
    if outcome.is_ok() {
        if let Some(export_path) = &cli.export_trace {
            outcome = export_traces(&addr, export_path).map(|n| {
                eprintln!(
                    "replaygen: exported {n} assembled trace(s) to {}",
                    export_path.display()
                );
            });
        }
    }
    if let Some(fleet) = fleet {
        fleet.shutdown();
    }
    outcome?;

    let mut doc = Map::new();
    doc.insert("tape".to_owned(), Value::String(path.display().to_string()));
    doc.insert(
        "entries".to_owned(),
        serde_json::to_value(tape.entries.len() as u64).expect("u64 serializes"),
    );
    doc.insert(
        "concurrency".to_owned(),
        serde_json::to_value(cli.concurrency as u64).expect("u64 serializes"),
    );
    doc.insert(
        "passes".to_owned(),
        Value::Array(passes.iter().map(ReplayReport::to_json).collect()),
    );
    let report_json = Value::Object(doc).to_json_string();
    println!("{report_json}");
    if let Some(report_path) = &cli.report {
        std::fs::write(report_path, format!("{report_json}\n"))
            .map_err(|e| format!("write {}: {e}", report_path.display()))?;
    }

    // --- the CI gates ---
    let mut failures = Vec::new();
    for (i, report) in passes.iter().enumerate() {
        if report.mismatched > 0 {
            failures.push(format!(
                "pass {}: {} response(s) differed from the tape: {}",
                i + 1,
                report.mismatched,
                report.mismatch_details.join("; ")
            ));
        }
        if report.transport_errors > 0 {
            failures.push(format!(
                "pass {}: {} transport error(s)",
                i + 1,
                report.transport_errors
            ));
        }
        if let Some(max) = cli.max_shed_rate {
            if report.shed_rate() > max {
                failures.push(format!(
                    "pass {}: shed rate {:.4} exceeds {max}",
                    i + 1,
                    report.shed_rate()
                ));
            }
        }
    }
    if cli.require_warm_hits {
        if let Some(last) = passes.last() {
            if last.hits == 0 {
                failures.push(format!(
                    "final pass had zero cache hits ({})",
                    last.fingerprint()
                ));
            }
        }
    }
    if !failures.is_empty() {
        return Err(failures.join("\n"));
    }
    Ok(())
}

/// Fetches every trace id the router's ring holds, pulls each
/// assembled (router + stitched backend) tree through
/// `GET /debug/trace/{id}`, and writes the lot as one Chrome
/// trace-event document.
fn export_traces(addr: &str, path: &Path) -> Result<usize, String> {
    let mut client = HttpClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let (status, body) = client
        .request("GET", "/debug/trace", None)
        .map_err(|e| format!("fetch /debug/trace: {e}"))?;
    if status != 200 {
        return Err(format!("/debug/trace answered {status}"));
    }
    let index: Value =
        serde_json::from_str(&body).map_err(|e| format!("parse /debug/trace: {e}"))?;
    let ids: Vec<String> = match index.get("traces") {
        Some(Value::Array(ids)) => ids
            .iter()
            .filter_map(|v| v.as_str().map(str::to_owned))
            .collect(),
        _ => return Err("/debug/trace has no traces array".to_owned()),
    };

    let mut assembled: Vec<(String, String, SpanData)> = Vec::with_capacity(ids.len());
    for id in ids {
        // a trace can age out of the ring between the index fetch and
        // this one; skipping it beats failing the whole export
        let Ok((status, body)) = client.request("GET", &format!("/debug/trace/{id}"), None) else {
            client = HttpClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
            continue;
        };
        if status != 200 {
            continue;
        }
        let Ok(doc): Result<Value, _> = serde_json::from_str(&body) else {
            continue;
        };
        let service = doc
            .get("service")
            .and_then(Value::as_str)
            .unwrap_or("raysearch-router")
            .to_owned();
        let Some(root) = doc.get("root").and_then(|v| SpanData::from_json(v).ok()) else {
            continue;
        };
        assembled.push((id, service, root));
    }
    if assembled.is_empty() {
        return Err("no traces to export (is sampling enabled?)".to_owned());
    }
    let json = chrome_trace_json(
        assembled
            .iter()
            .map(|(t, s, r)| (t.as_str(), s.as_str(), r)),
    );
    std::fs::write(path, format!("{json}\n"))
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(assembled.len())
}

fn main() {
    let parsed = match parse_args(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(Some(cli)) => cli,
        Ok(None) => {
            println!("{USAGE}");
            return;
        }
        Err(msg) => {
            eprintln!("replaygen: {msg}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let outcome = if let Some(path) = parsed.record.clone() {
        record(&parsed, &path)
    } else {
        let path = parsed.tape.clone().expect("parse_args requires a mode");
        replay_mode(&parsed, &path)
    };
    if let Err(msg) = outcome {
        eprintln!("replaygen: {msg}");
        std::process::exit(1);
    }
}
