//! `raysearchd` — the caching evaluation server for the `raysearch`
//! reproduction, plus its self-client modes.
//!
//! ```text
//! raysearchd [--addr HOST:PORT] [--workers N] [--queue N]
//!            [--cache-capacity N] [--shards N] [--port-file PATH]
//! raysearchd --probe ADDR
//! raysearchd --bench N [--concurrency C] [--addr HOST:PORT]
//! ```
//!
//! Serve mode binds (an ephemeral port by default), prints the bound
//! address, optionally writes it to `--port-file` for scripts, and runs
//! until killed. `--probe` smoke-tests every endpoint of a running
//! server and exits 0 on success. `--bench` spawns a fresh in-process
//! server (unless `--addr` points at one) and reports hot-vs-cold cache
//! throughput as JSON.

use raysearch_service::load::{run_load, LoadConfig};
use raysearch_service::probe::run_probe;
use raysearch_service::server::{Server, ServerConfig};

const USAGE: &str = "\
usage: raysearchd [mode] [options]

modes (default: serve):
  --probe ADDR       smoke-test every endpoint of the server at ADDR
                     (e.g. 127.0.0.1:8077) and exit 0 if all pass
  --bench N          load-test: N hot-phase requests; spawns a fresh
                     in-process server unless --addr is given

serve options:
  --addr HOST:PORT   bind address (default 127.0.0.1:0 = ephemeral port)
  --workers N        worker threads (default: max(4, cores))
  --queue N          bounded accept-queue depth (default 128)
  --cache-capacity N total memo-cache entries (default 4096)
  --shards N         memo-cache shards (default 16)
  --port-file PATH   write the bound HOST:PORT to PATH once listening
  --slow-log-micros N  requests slower than N microseconds land in the
                     GET /debug/slow ring buffer (0 logs everything;
                     default 100000)
  --trace-sample N   keep ~1-in-N span traces for GET /debug/trace/{id}
                     (slow requests are always kept; 1 keeps every
                     trace; default 64)
  --compute-workers N  compute threads draining the job queue,
                     separate from the HTTP workers (default 2)
  --job-queue N      bounded job-queue depth; a full queue sheds
                     submissions with 503 + Retry-After (default 64)
  --job-store N      job records retained before oldest-done eviction
                     (default 256)
  --job-cost-threshold N  minimum k*m*(f+2) instance work for an
                     /evaluate payload to be accepted as a job; cheaper
                     work gets a 400 pointing at the synchronous
                     endpoint (0 admits everything; default 65536)
  --job-node N       0-255 node tag baked into the high bits of every
                     job id, so a router can route polls back to the
                     minting backend (default 0)

bench options:
  --concurrency C    concurrent connections for --bench (default 4)

  --help             show this help";

#[derive(Debug, Default)]
struct Cli {
    probe: Option<String>,
    bench: Option<usize>,
    concurrency: usize,
    addr: Option<String>,
    port_file: Option<String>,
    workers: Option<usize>,
    queue: Option<usize>,
    cache_capacity: Option<usize>,
    shards: Option<usize>,
    slow_log_micros: Option<u64>,
    trace_sample: Option<u64>,
    compute_workers: Option<usize>,
    job_queue: Option<usize>,
    job_store: Option<usize>,
    job_cost_threshold: Option<u64>,
    job_node: Option<u64>,
}

fn parse_args(args: &[String]) -> Result<Option<Cli>, String> {
    let mut cli = Cli {
        concurrency: 4,
        ..Cli::default()
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        let parse_count = |flag: &str, v: String| {
            v.parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| format!("{flag} expects an integer >= 1"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--probe" => cli.probe = Some(value_of("--probe")?),
            "--bench" => cli.bench = Some(parse_count("--bench", value_of("--bench")?)?),
            "--concurrency" => {
                cli.concurrency = parse_count("--concurrency", value_of("--concurrency")?)?;
            }
            "--addr" => cli.addr = Some(value_of("--addr")?),
            "--port-file" => cli.port_file = Some(value_of("--port-file")?),
            "--workers" => cli.workers = Some(parse_count("--workers", value_of("--workers")?)?),
            "--queue" => cli.queue = Some(parse_count("--queue", value_of("--queue")?)?),
            "--cache-capacity" => {
                cli.cache_capacity = Some(parse_count(
                    "--cache-capacity",
                    value_of("--cache-capacity")?,
                )?);
            }
            "--shards" => cli.shards = Some(parse_count("--shards", value_of("--shards")?)?),
            "--slow-log-micros" => {
                // 0 is meaningful here (log every request), so this
                // flag does not go through parse_count's >= 1 floor
                cli.slow_log_micros = Some(
                    value_of("--slow-log-micros")?
                        .parse::<u64>()
                        .map_err(|_| "--slow-log-micros expects an integer >= 0".to_owned())?,
                );
            }
            "--trace-sample" => {
                cli.trace_sample = Some(
                    value_of("--trace-sample")?
                        .parse::<u64>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| "--trace-sample expects an integer >= 1".to_owned())?,
                );
            }
            "--compute-workers" => {
                cli.compute_workers = Some(parse_count(
                    "--compute-workers",
                    value_of("--compute-workers")?,
                )?);
            }
            "--job-queue" => {
                cli.job_queue = Some(parse_count("--job-queue", value_of("--job-queue")?)?);
            }
            "--job-store" => {
                cli.job_store = Some(parse_count("--job-store", value_of("--job-store")?)?);
            }
            "--job-cost-threshold" => {
                // 0 is meaningful (admit any payload as a job)
                cli.job_cost_threshold = Some(
                    value_of("--job-cost-threshold")?
                        .parse::<u64>()
                        .map_err(|_| "--job-cost-threshold expects an integer >= 0".to_owned())?,
                );
            }
            "--job-node" => {
                cli.job_node = Some(
                    value_of("--job-node")?
                        .parse::<u64>()
                        .ok()
                        .filter(|&n| n <= 255)
                        .ok_or_else(|| "--job-node expects an integer in 0..=255".to_owned())?,
                );
            }
            flag => return Err(format!("unknown flag {flag}")),
        }
    }
    if cli.probe.is_some() && cli.bench.is_some() {
        return Err("--probe and --bench are mutually exclusive".to_owned());
    }
    Ok(Some(cli))
}

fn server_config(cli: &Cli) -> ServerConfig {
    let mut cfg = ServerConfig::default();
    if let Some(addr) = &cli.addr {
        cfg.addr = addr.clone();
    }
    if let Some(workers) = cli.workers {
        cfg.workers = workers;
    }
    if let Some(queue) = cli.queue {
        cfg.queue_depth = queue;
    }
    if let Some(capacity) = cli.cache_capacity {
        cfg.cache_capacity = capacity;
    }
    if let Some(shards) = cli.shards {
        cfg.cache_shards = shards;
    }
    if let Some(n) = cli.compute_workers {
        cfg.compute_workers = n;
    }
    if let Some(n) = cli.job_queue {
        cfg.job_queue_depth = n;
    }
    if let Some(n) = cli.job_store {
        cfg.job_store_capacity = n;
    }
    if let Some(n) = cli.job_cost_threshold {
        cfg.job_cost_threshold = n;
    }
    if let Some(n) = cli.job_node {
        cfg.job_node = n;
    }
    cfg
}

fn serve(cli: &Cli) -> Result<(), String> {
    let cfg = server_config(cli);
    let server = Server::bind(cfg.clone()).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
    if let Some(micros) = cli.slow_log_micros {
        server.state().telemetry().set_slow_threshold(micros);
    }
    if let Some(n) = cli.trace_sample {
        server.state().telemetry().set_trace_sample(n);
    }
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    println!(
        "raysearchd listening on {addr} ({} workers, cache {} x {} shards)",
        cfg.workers, cfg.cache_capacity, cfg.cache_shards
    );
    if let Some(path) = &cli.port_file {
        std::fs::write(path, format!("{addr}\n")).map_err(|e| format!("write {path}: {e}"))?;
    }
    server.spawn().join();
    Ok(())
}

fn probe(addr: &str) -> Result<(), String> {
    let lines = run_probe(addr)?;
    for line in &lines {
        println!("probe ok - {line}");
    }
    println!("probe: all {} checks passed", lines.len());
    Ok(())
}

fn bench(cli: &Cli, requests: usize) -> Result<(), String> {
    // an external --addr must point at a *fresh* server for the cold
    // numbers to mean anything; without one we guarantee it in-process
    let (addr, handle) = match &cli.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let mut cfg = server_config(cli);
            cfg.addr = "127.0.0.1:0".to_owned();
            cfg.workers = cfg.workers.max(cli.concurrency + 2);
            let server = Server::bind(cfg).map_err(|e| format!("bind: {e}"))?;
            let handle = server.spawn();
            (handle.addr().to_string(), Some(handle))
        }
    };
    let report = run_load(
        &addr,
        LoadConfig {
            requests,
            concurrency: cli.concurrency,
        },
    );
    if let Some(handle) = handle {
        handle.shutdown();
    }
    let report = report?;
    println!(
        "{}",
        serde_json::to_string(&report).expect("load report serializes")
    );
    eprintln!(
        "bench: cold {:.1} req/s over {} requests, hot {:.1} req/s over {} requests, speedup {:.1}x",
        report.cold_rps, report.cold_requests, report.hot_rps, report.hot_requests, report.speedup
    );
    if report.errors > 0 {
        return Err(format!("{} request(s) failed", report.errors));
    }
    Ok(())
}

fn main() {
    let parsed = match parse_args(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(Some(cli)) => cli,
        Ok(None) => {
            println!("{USAGE}");
            return;
        }
        Err(msg) => {
            eprintln!("raysearchd: {msg}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let outcome = if let Some(addr) = &parsed.probe {
        probe(addr)
    } else if let Some(requests) = parsed.bench {
        bench(&parsed, requests)
    } else {
        serve(&parsed)
    };
    if let Err(msg) = outcome {
        eprintln!("raysearchd: {msg}");
        std::process::exit(1);
    }
}
