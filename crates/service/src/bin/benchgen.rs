//! `benchgen` — generates the committed perf-trajectory artifact
//! (`BENCH_10.json`): the E12 deep-horizon sweep timed cold and warm
//! against a shared compile memo, plus the serving layer's hot/cold
//! throughput with per-endpoint latency percentiles from the shared
//! telemetry histograms, all pinned against the PR 5 baseline. The
//! document also records the warm-sweep wall time against the BENCH_6
//! (pre-telemetry) warm median and against the BENCH_8 (pre-tracing)
//! warm median, so the cost of each observability layer — histograms,
//! then span traces — stays an explicit, tracked number, and a
//! `jobs_overhead` object pricing the async job envelope: the warm
//! median of a campaign served synchronously versus the same campaign
//! submitted via `POST /jobs` and long-polled to `done`.
//!
//! ```text
//! benchgen [--out PATH] [--max-k N] [--horizon X] [--iterations N]
//!          [--load-requests N] [--concurrency C] [--skip-load]
//! ```
//!
//! The defaults reproduce the committed artifact exactly as CI's
//! bench-smoke job expects, except that CI shrinks `--max-k` and
//! `--load-requests` to stay fast. The binary hard-fails if any sweep
//! row exceeds the closed form `Λ(q/k)`, if repeated runs are not
//! bit-identical, or if the warm phase sees zero compile-cache hits —
//! the same invariants the JSON records for downstream checks.

use std::sync::Arc;

use raysearch_bench::experiments::e12_large_fleet;
use raysearch_core::campaign::CampaignRun;
use raysearch_core::CompileMemo;
use raysearch_service::client::HttpClient;
use raysearch_service::load::{run_load, LoadConfig, LoadReport};
use raysearch_service::{Server, ServerConfig};

/// The PR 5 measurement this artifact is pinned against: the full E12
/// sweep (`--max-k 4096`, horizon `1e12`, one thread) before the
/// compilation layer, measured on the same container class.
const BASELINE_PR: u32 = 5;
const BASELINE_E12_SWEEP_MICROS: u64 = 24_212_644;

/// The BENCH_6 warm-phase median (full sweep, shared memo, 1 thread)
/// from before the telemetry layer existed — the reference point for
/// the instrumentation-overhead figure in the artifact.
const BENCH_6_WARM_MEDIAN_MICROS: u64 = 221_641;

/// The BENCH_8 warm-phase median from before the span-trace layer
/// existed — the reference point for the tracing-overhead figure. The
/// committed artifact must stay within 1.05x of this number with
/// sampling at the default 1-in-64.
const BENCH_8_WARM_MEDIAN_MICROS: u64 = 228_127;

/// The default trace-sampling rate the serving tier runs with; recorded
/// in the artifact so the overhead figure names its sampling policy.
const TRACE_SAMPLE_ONE_IN: u64 = 64;

const USAGE: &str = "\
usage: benchgen [options]

options:
  --out PATH         output path (default BENCH_10.json)
  --max-k N          E12 fleet-size cap (default 4096 = the full sweep)
  --horizon X        E12 evaluation horizon (default 1e12)
  --iterations N     timed runs per phase (default 3)
  --load-requests N  hot-phase requests for the service bench (default 512)
  --concurrency C    concurrent load clients (default 4)
  --skip-load        skip the service hot/cold throughput phase
  --help             show this help";

#[derive(Debug)]
struct Cli {
    out: String,
    max_k: u32,
    horizon: f64,
    iterations: usize,
    load_requests: usize,
    concurrency: usize,
    skip_load: bool,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            out: "BENCH_10.json".to_owned(),
            max_k: 4096,
            horizon: 1e12,
            iterations: 3,
            load_requests: 512,
            concurrency: 4,
            skip_load: false,
        }
    }
}

fn parse_args(args: &[String]) -> Result<Option<Cli>, String> {
    let mut cli = Cli::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        let parse_count = |flag: &str, v: String| {
            v.parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| format!("{flag} expects an integer >= 1"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--out" => cli.out = value_of("--out")?,
            "--max-k" => {
                cli.max_k = value_of("--max-k")?
                    .parse::<u32>()
                    .ok()
                    .filter(|&k| k >= 1)
                    .ok_or("--max-k expects an integer >= 1")?;
            }
            "--horizon" => {
                cli.horizon = value_of("--horizon")?
                    .parse::<f64>()
                    .ok()
                    .filter(|h| h.is_finite() && *h > 1.0)
                    .ok_or("--horizon expects a finite number > 1")?;
            }
            "--iterations" => {
                cli.iterations = parse_count("--iterations", value_of("--iterations")?)?;
            }
            "--load-requests" => {
                cli.load_requests = parse_count("--load-requests", value_of("--load-requests")?)?;
            }
            "--concurrency" => {
                cli.concurrency = parse_count("--concurrency", value_of("--concurrency")?)?;
            }
            "--skip-load" => cli.skip_load = true,
            flag => return Err(format!("unknown flag {flag}")),
        }
    }
    Ok(Some(cli))
}

#[derive(serde::Serialize)]
struct Config {
    max_k: u32,
    horizon: f64,
    iterations: usize,
    threads: usize,
    load_requests: usize,
    concurrency: usize,
}

#[derive(serde::Serialize)]
struct Baseline {
    pr: u32,
    description: &'static str,
    e12_sweep_micros: u64,
    threads: usize,
}

/// The compile/evaluate wall-time split of one campaign run, derived
/// from the run's [`raysearch_core::CompileStats`] delta.
#[derive(serde::Serialize)]
struct CompileSplit {
    hits: u64,
    misses: u64,
    entries: u64,
    compile_micros: u64,
    evaluate_micros: u64,
}

#[derive(serde::Serialize)]
struct PhaseStats {
    runs_micros: Vec<u64>,
    median_micros: u64,
    compile: CompileSplit,
}

#[derive(serde::Serialize)]
struct SweepBench {
    rows: usize,
    max_rel_err: f64,
    all_rows_below_closed_form: bool,
    cold: PhaseStats,
    warm: PhaseStats,
    speedup_vs_baseline: f64,
    warm_speedup_vs_cold: f64,
}

#[derive(serde::Serialize)]
struct ServiceBench {
    load: LoadReport,
    compile_hits: u64,
    compile_misses: u64,
    compile_entries: u64,
}

/// Warm-sweep wall time relative to the committed BENCH_6 warm median:
/// the cost of the telemetry layer on the hottest all-memoized path.
/// Only meaningful for full-size runs (`--max-k 4096`); smaller sweeps
/// record the ratio anyway but it compares different workloads.
#[derive(serde::Serialize)]
struct TelemetryOverhead {
    bench6_warm_median_micros: u64,
    warm_median_micros: u64,
    warm_ratio_vs_bench6: f64,
}

/// Warm-sweep wall time relative to the committed BENCH_8 warm median:
/// the cost of the span-trace layer (per-span tree capture plus the
/// deterministic sampling draw) on top of the histograms BENCH_8
/// already priced in. `sample_one_in` records the serving tier's
/// default sampling policy the figure is valid for.
#[derive(serde::Serialize)]
struct TracingOverhead {
    bench8_warm_median_micros: u64,
    warm_median_micros: u64,
    warm_ratio_vs_bench8: f64,
    sample_one_in: u64,
}

/// Warm-path cost of the async job envelope: the same deep campaign
/// served synchronously (`POST /campaign`, memo hit) versus submitted
/// as a job and long-polled to `done` (`POST /jobs` + `GET
/// /jobs/{id}?wait_micros=`). Both paths resolve through the identical
/// shared execute function, so the ratio prices exactly the queue trip,
/// the store round-trip, and the extra HTTP exchange — never a second
/// computation.
#[derive(serde::Serialize)]
struct JobsOverhead {
    sync_warm_median_micros: u64,
    jobs_warm_median_micros: u64,
    ratio: f64,
    iterations: usize,
}

#[derive(serde::Serialize)]
struct BenchDoc {
    schema_version: u32,
    bench_id: &'static str,
    paper: &'static str,
    generator: &'static str,
    config: Config,
    baseline: Baseline,
    e12_sweep: SweepBench,
    telemetry_overhead: TelemetryOverhead,
    tracing_overhead: TracingOverhead,
    jobs_overhead: JobsOverhead,
    service: Option<ServiceBench>,
}

/// Lower median of the run times (deterministic for even counts).
fn median(samples: &[u64]) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    sorted[(sorted.len() - 1) / 2]
}

fn run_sweep_once(
    cli: &Cli,
    memo: Arc<CompileMemo>,
) -> (CampaignRun<e12_large_fleet::Row>, CompileSplit) {
    let run = e12_large_fleet::campaign_with_memo(cli.max_k, cli.horizon, memo)
        .threads(Some(1))
        .run();
    let stats = run.compile.expect("campaign_with_memo attaches the memo");
    let split = CompileSplit {
        hits: stats.hits,
        misses: stats.misses,
        entries: stats.entries,
        compile_micros: stats.compile_micros,
        evaluate_micros: run.micros.saturating_sub(stats.compile_micros),
    };
    (run, split)
}

fn check_rows(runs: &[CampaignRun<e12_large_fleet::Row>]) -> Result<(usize, f64), String> {
    let reference = &runs[0];
    let mut max_rel_err = 0.0f64;
    for row in reference.rows() {
        if !(row.measured.is_finite() && row.measured <= row.closed_form * (1.0 + 1e-9)) {
            return Err(format!(
                "(k={}, f={}): measured {} exceeds Λ = {}",
                row.k, row.f, row.measured, row.closed_form
            ));
        }
        max_rel_err = max_rel_err.max(row.rel_err);
    }
    for run in &runs[1..] {
        for (a, b) in reference.rows().zip(run.rows()) {
            if a.measured.to_bits() != b.measured.to_bits() || a.breakpoints != b.breakpoints {
                return Err(format!(
                    "(k={}, f={}): repeated runs are not bit-identical",
                    a.k, a.f
                ));
            }
        }
    }
    Ok((reference.results.len(), max_rel_err))
}

fn bench_sweep(cli: &Cli) -> Result<SweepBench, String> {
    // the first cold run doubles as the warm phase's priming run: it
    // starts from the same empty memo as every other cold run, and
    // leaves `shared` fully populated
    let shared = Arc::new(CompileMemo::new());
    let mut runs = Vec::new();
    let mut cold_micros = Vec::new();
    let mut cold_split = None;
    for i in 0..cli.iterations {
        let memo = if i == 0 {
            Arc::clone(&shared)
        } else {
            Arc::new(CompileMemo::new())
        };
        let (run, split) = run_sweep_once(cli, memo);
        eprintln!(
            "benchgen: cold run {}/{}: {} µs ({} compiles)",
            i + 1,
            cli.iterations,
            run.micros,
            split.misses
        );
        cold_micros.push(run.micros);
        cold_split.get_or_insert(split);
        runs.push(run);
    }
    let mut warm_micros = Vec::new();
    let mut warm_split = None;
    for i in 0..cli.iterations {
        let (run, split) = run_sweep_once(cli, Arc::clone(&shared));
        eprintln!(
            "benchgen: warm run {}/{}: {} µs ({} hits)",
            i + 1,
            cli.iterations,
            run.micros,
            split.hits
        );
        if split.misses != 0 || split.hits == 0 {
            return Err(format!(
                "warm run {} was not fully memoized: {} hits, {} misses",
                i + 1,
                split.hits,
                split.misses
            ));
        }
        warm_micros.push(run.micros);
        warm_split.get_or_insert(split);
        runs.push(run);
    }
    let (rows, max_rel_err) = check_rows(&runs)?;
    let cold = PhaseStats {
        median_micros: median(&cold_micros),
        runs_micros: cold_micros,
        compile: cold_split.expect("at least one cold run"),
    };
    let warm = PhaseStats {
        median_micros: median(&warm_micros),
        runs_micros: warm_micros,
        compile: warm_split.expect("at least one warm run"),
    };
    let speedup_vs_baseline = BASELINE_E12_SWEEP_MICROS as f64 / cold.median_micros.max(1) as f64;
    let warm_speedup_vs_cold = cold.median_micros as f64 / warm.median_micros.max(1) as f64;
    Ok(SweepBench {
        rows,
        max_rel_err,
        all_rows_below_closed_form: true,
        cold,
        warm,
        speedup_vs_baseline,
        warm_speedup_vs_cold,
    })
}

/// Reads the compile-tier counters from a running server's `/stats`.
fn compile_counters(addr: &str) -> Result<(u64, u64, u64), String> {
    let mut client = HttpClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let (status, body) = client
        .request("GET", "/stats", None)
        .map_err(|e| format!("GET /stats: {e}"))?;
    if status != 200 {
        return Err(format!("GET /stats returned {status}"));
    }
    let value: serde_json::Value =
        serde_json::from_str(&body).map_err(|e| format!("parse /stats: {e}"))?;
    let counter = |key: &str| {
        value
            .get(key)
            .and_then(serde_json::Value::as_u64)
            .ok_or_else(|| format!("/stats is missing {key}"))
    };
    Ok((
        counter("compile_hits")?,
        counter("compile_misses")?,
        counter("compile_entries")?,
    ))
}

fn bench_service(cli: &Cli) -> Result<ServiceBench, String> {
    let defaults = ServerConfig::default();
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: defaults.workers.max(cli.concurrency + 2),
        ..defaults
    };
    let server = Server::bind(cfg).map_err(|e| format!("bind: {e}"))?;
    let handle = server.spawn();
    let addr = handle.addr().to_string();
    let load = run_load(
        &addr,
        LoadConfig {
            requests: cli.load_requests,
            concurrency: cli.concurrency,
        },
    );
    let counters = load.as_ref().ok().map(|_| compile_counters(&addr));
    handle.shutdown();
    let load = load?;
    if load.errors > 0 {
        return Err(format!("{} load request(s) failed", load.errors));
    }
    let (compile_hits, compile_misses, compile_entries) =
        counters.expect("load succeeded, so counters were fetched")?;
    eprintln!(
        "benchgen: service cold {:.1} req/s, hot {:.1} req/s, compile tier {compile_hits} hits / {compile_misses} misses",
        load.cold_rps, load.hot_rps
    );
    Ok(ServiceBench {
        load,
        compile_hits,
        compile_misses,
        compile_entries,
    })
}

/// Times the warm synchronous campaign against the same campaign via
/// the job tier on a fresh in-process server. One cold run primes the
/// memo; every timed run on either path is then a cache hit.
fn bench_jobs(cli: &Cli) -> Result<JobsOverhead, String> {
    const CAMPAIGN: &str = r#"{"id":"e2","max_k":12}"#;
    const ENVELOPE: &str = r#"{"endpoint":"campaign","client":"benchgen","id":"e2","max_k":12}"#;
    let iterations = cli.iterations.max(5);
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..ServerConfig::default()
    })
    .map_err(|e| format!("bind: {e}"))?;
    let handle = server.spawn();
    let addr = handle.addr().to_string();
    let outcome = (|| -> Result<JobsOverhead, String> {
        let mut client = HttpClient::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let request = |client: &mut HttpClient, method: &str, target: &str, body: Option<&str>| {
            let (status, reply) = client
                .request(method, target, body)
                .map_err(|e| format!("{method} {target}: {e}"))?;
            Ok::<(u16, String), String>((status, reply))
        };
        // prime: the one cold computation both warm paths will hit
        let (status, sync_reply) = request(&mut client, "POST", "/campaign", Some(CAMPAIGN))?;
        if status != 200 {
            return Err(format!("priming campaign returned {status}: {sync_reply}"));
        }
        let mut sync_micros = Vec::with_capacity(iterations);
        for _ in 0..iterations {
            let started = std::time::Instant::now();
            let (status, _) = request(&mut client, "POST", "/campaign", Some(CAMPAIGN))?;
            if status != 200 {
                return Err(format!("warm campaign returned {status}"));
            }
            sync_micros.push(started.elapsed().as_micros() as u64);
        }
        let mut jobs_micros = Vec::with_capacity(iterations);
        for round in 0..iterations {
            let started = std::time::Instant::now();
            let (status, reply) = request(&mut client, "POST", "/jobs", Some(ENVELOPE))?;
            if status != 202 {
                return Err(format!("job submit returned {status}: {reply}"));
            }
            let submitted: serde_json::Value =
                serde_json::from_str(&reply).map_err(|e| format!("parse submit: {e}"))?;
            let id = submitted
                .get("id")
                .and_then(serde_json::Value::as_str)
                .ok_or_else(|| format!("submit without id: {reply}"))?
                .to_owned();
            let target = format!("/jobs/{id}?wait_micros=2000000");
            let record = loop {
                let (status, reply) = request(&mut client, "GET", &target, None)?;
                if status != 200 {
                    return Err(format!("job poll returned {status}: {reply}"));
                }
                let record: serde_json::Value =
                    serde_json::from_str(&reply).map_err(|e| format!("parse poll: {e}"))?;
                match record.get("state").and_then(serde_json::Value::as_str) {
                    Some("done") => break record,
                    Some("queued" | "running") => {}
                    other => return Err(format!("job reached {other:?}: {reply}")),
                }
            };
            jobs_micros.push(started.elapsed().as_micros() as u64);
            if round == 0 {
                // the envelope must never change the bytes: compare the
                // job's payload against the synchronous answer once
                let sync: serde_json::Value =
                    serde_json::from_str(&sync_reply).map_err(|e| format!("parse sync: {e}"))?;
                let sync_payload = sync
                    .get("result")
                    .ok_or("sync campaign without result")?
                    .to_json_string();
                let job_payload = record
                    .get("result")
                    .ok_or("done job without result")?
                    .to_json_string();
                if sync_payload != job_payload {
                    return Err(format!(
                        "job payload diverges from the synchronous answer:\njob:  {job_payload}\nsync: {sync_payload}"
                    ));
                }
            }
        }
        let sync_warm_median_micros = median(&sync_micros);
        let jobs_warm_median_micros = median(&jobs_micros);
        Ok(JobsOverhead {
            sync_warm_median_micros,
            jobs_warm_median_micros,
            ratio: jobs_warm_median_micros as f64 / sync_warm_median_micros.max(1) as f64,
            iterations,
        })
    })();
    handle.shutdown();
    let overhead = outcome?;
    eprintln!(
        "benchgen: jobs overhead: sync warm {} µs, via jobs {} µs ({:.2}x)",
        overhead.sync_warm_median_micros, overhead.jobs_warm_median_micros, overhead.ratio
    );
    Ok(overhead)
}

fn generate(cli: &Cli) -> Result<(), String> {
    let e12_sweep = bench_sweep(cli)?;
    let jobs_overhead = bench_jobs(cli)?;
    let service = if cli.skip_load {
        None
    } else {
        Some(bench_service(cli)?)
    };
    let telemetry_overhead = TelemetryOverhead {
        bench6_warm_median_micros: BENCH_6_WARM_MEDIAN_MICROS,
        warm_median_micros: e12_sweep.warm.median_micros,
        warm_ratio_vs_bench6: e12_sweep.warm.median_micros as f64
            / BENCH_6_WARM_MEDIAN_MICROS as f64,
    };
    let tracing_overhead = TracingOverhead {
        bench8_warm_median_micros: BENCH_8_WARM_MEDIAN_MICROS,
        warm_median_micros: e12_sweep.warm.median_micros,
        warm_ratio_vs_bench8: e12_sweep.warm.median_micros as f64
            / BENCH_8_WARM_MEDIAN_MICROS as f64,
        sample_one_in: TRACE_SAMPLE_ONE_IN,
    };
    let doc = BenchDoc {
        schema_version: 1,
        bench_id: "BENCH_10",
        paper: "1707.05077",
        generator: "benchgen",
        config: Config {
            max_k: cli.max_k,
            horizon: cli.horizon,
            iterations: cli.iterations,
            threads: 1,
            load_requests: cli.load_requests,
            concurrency: cli.concurrency,
        },
        baseline: Baseline {
            pr: BASELINE_PR,
            description:
                "full E12 sweep (max-k 4096, horizon 1e12, 1 thread) before the compilation layer",
            e12_sweep_micros: BASELINE_E12_SWEEP_MICROS,
            threads: 1,
        },
        e12_sweep,
        telemetry_overhead,
        tracing_overhead,
        jobs_overhead,
        service,
    };
    let json = serde_json::to_string(&doc).map_err(|e| e.to_string())?;
    std::fs::write(&cli.out, format!("{json}\n")).map_err(|e| format!("write {}: {e}", cli.out))?;
    println!(
        "benchgen: wrote {} (cold median {} µs, {:.1}x vs PR {} baseline, warm {:.1}x vs cold, \
         warm {:.3}x vs BENCH_6, {:.3}x vs BENCH_8, jobs envelope {:.2}x)",
        cli.out,
        doc.e12_sweep.cold.median_micros,
        doc.e12_sweep.speedup_vs_baseline,
        BASELINE_PR,
        doc.e12_sweep.warm_speedup_vs_cold,
        doc.telemetry_overhead.warm_ratio_vs_bench6,
        doc.tracing_overhead.warm_ratio_vs_bench8,
        doc.jobs_overhead.ratio
    );
    Ok(())
}

fn main() {
    let parsed = match parse_args(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(Some(cli)) => cli,
        Ok(None) => {
            println!("{USAGE}");
            return;
        }
        Err(msg) => {
            eprintln!("benchgen: {msg}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(msg) = generate(&parsed) {
        eprintln!("benchgen: {msg}");
        std::process::exit(1);
    }
}
