//! The TCP server: a fixed worker pool behind a bounded accept queue,
//! generic over the request [`Handler`].
//!
//! One acceptor thread owns the `TcpListener` and pushes accepted
//! connections into a bounded `sync_channel`; `workers` threads pop
//! connections and drive each one through its whole keep-alive
//! lifetime. When the queue is full the acceptor sheds load immediately
//! with a `503` instead of letting the backlog grow without bound — a
//! deliberate, visible failure mode for overload (and counted through
//! [`Handler::note_shed`], so `/stats` can report it).
//!
//! The transport knows nothing about endpoints: everything above the
//! HTTP layer goes through the [`Handler`] trait, which both the
//! evaluation backend ([`ServiceState`]) and the consistent-hash router
//! ([`RouterState`](crate::route::RouterState)) implement — one
//! worker-pool/accept-queue/keep-alive implementation serves both
//! binaries.
//!
//! Shutdown is cooperative: [`ServerHandle::shutdown`] sets a flag,
//! pokes the listener with a throwaway connection to unblock `accept`,
//! closes the queue, and joins every thread.

use std::io::{BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use crate::api::ServiceState;
use crate::http::{read_request, HttpError, Request, Response};
use crate::jobs::JobConfig;

/// What the transport needs from the layer above it: turn one parsed
/// request into one response, and (optionally) account for connections
/// the acceptor had to shed.
pub trait Handler: Send + Sync + 'static {
    /// Produces the response for one request. Must be infallible at the
    /// HTTP layer — internal errors become JSON error responses.
    fn handle(&self, req: &Request) -> Response;

    /// Called by the acceptor each time it sheds a connection with a
    /// `503` because the accept queue is full. Default: unobserved.
    fn note_shed(&self) {}

    /// Spawns any background worker threads the handler owns, separate
    /// from the HTTP pool — the evaluation backend starts its job
    /// compute pool here. Called once by [`Server::spawn`] with the
    /// server's stop flag; the returned threads are joined at shutdown.
    /// Default: none.
    fn start_background(self: Arc<Self>, stop: Arc<AtomicBool>) -> Vec<JoinHandle<()>>
    where
        Self: Sized,
    {
        let _ = stop;
        Vec::new()
    }

    /// Asks background workers to wind down promptly (the backend
    /// closes its job queue here) before their threads are joined.
    /// Default: nothing to stop.
    fn stop_background(&self) {}
}

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Bounded depth of the accept queue; beyond it, connections get 503.
    pub queue_depth: usize,
    /// Total memo-cache capacity (entries) — used by the default
    /// [`ServiceState`] construction in [`Server::bind`].
    pub cache_capacity: usize,
    /// Number of memo-cache shards (ditto).
    pub cache_shards: usize,
    /// Per-connection read timeout while waiting for the next request.
    pub read_timeout: Duration,
    /// Compute-worker threads draining the job queue — a pool separate
    /// from the HTTP `workers`, so queued heavy jobs never occupy the
    /// threads serving cached reads.
    pub compute_workers: usize,
    /// Bounded depth of the job admission queue; beyond it, `POST
    /// /jobs` sheds with a 503.
    pub job_queue_depth: usize,
    /// Bounded capacity of the job record store (oldest-done eviction).
    pub job_store_capacity: usize,
    /// Maximum in-flight (queued or running) jobs per client label.
    pub job_max_per_client: usize,
    /// Minimum `k·m·(f+2)` work for an `evaluate` job; cheaper
    /// evaluations are redirected to the synchronous endpoint.
    pub job_cost_threshold: u64,
    /// This backend's logical node index, encoded into the high bits of
    /// every job id it mints (the router routes `GET /jobs/{id}` by it).
    pub job_node: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let jobs = JobConfig::default();
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .max(4),
            queue_depth: 128,
            cache_capacity: 4096,
            cache_shards: 16,
            read_timeout: Duration::from_secs(10),
            compute_workers: jobs.workers,
            job_queue_depth: jobs.queue_depth,
            job_store_capacity: jobs.store_capacity,
            job_max_per_client: jobs.max_per_client,
            job_cost_threshold: jobs.cost_threshold,
            job_node: jobs.node,
        }
    }
}

/// A bound, not-yet-running server over handler `H`.
#[derive(Debug)]
pub struct Server<H: Handler = ServiceState> {
    listener: TcpListener,
    state: Arc<H>,
    cfg: ServerConfig,
}

impl Server<ServiceState> {
    /// Binds the configured address and allocates a fresh evaluation
    /// [`ServiceState`] sized by the config's cache fields.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server<ServiceState>> {
        let jobs = JobConfig {
            queue_depth: cfg.job_queue_depth,
            store_capacity: cfg.job_store_capacity,
            max_per_client: cfg.job_max_per_client,
            cost_threshold: cfg.job_cost_threshold,
            node: cfg.job_node,
            workers: cfg.compute_workers,
        };
        let state = Arc::new(ServiceState::with_jobs(
            cfg.cache_capacity,
            cfg.cache_shards,
            jobs,
        ));
        Server::bind_with(cfg, state)
    }
}

impl<H: Handler> Server<H> {
    /// Binds the configured address around a caller-provided handler
    /// (the router binary passes its [`RouterState`](crate::route::RouterState)
    /// here; tests can pass anything implementing [`Handler`]).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind_with(cfg: ServerConfig, handler: Arc<H>) -> std::io::Result<Server<H>> {
        let listener = TcpListener::bind(&cfg.addr)?;
        Ok(Server {
            listener,
            state: handler,
            cfg,
        })
    }

    /// The actually bound address (resolves an ephemeral port request).
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection failure.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared handler state (for in-process probing and tests).
    pub fn state(&self) -> Arc<H> {
        Arc::clone(&self.state)
    }

    /// Starts the acceptor and worker threads, returning a handle that
    /// can stop them. The caller's thread is *not* consumed.
    ///
    /// # Panics
    ///
    /// Panics if the listener's address cannot be introspected.
    pub fn spawn(self) -> ServerHandle<H> {
        let addr = self.local_addr().expect("bound listener has an address");
        let stop = Arc::new(AtomicBool::new(false));
        let (sender, receiver) = std::sync::mpsc::sync_channel::<TcpStream>(self.cfg.queue_depth);
        let receiver = Arc::new(Mutex::new(receiver));

        let mut threads: Vec<JoinHandle<()>> = Vec::with_capacity(self.cfg.workers + 1);
        for _ in 0..self.cfg.workers.max(1) {
            let receiver = Arc::clone(&receiver);
            let state = Arc::clone(&self.state);
            let timeout = self.cfg.read_timeout;
            threads.push(std::thread::spawn(move || {
                worker_loop(&receiver, &*state, timeout)
            }));
        }

        let acceptor = {
            let stop = Arc::clone(&stop);
            let state = Arc::clone(&self.state);
            std::thread::spawn(move || accept_loop(&self.listener, &sender, &stop, &*state))
        };
        threads.push(acceptor);

        // the handler's own background pool (e.g. job compute workers),
        // joined at shutdown alongside the HTTP threads
        threads.extend(Arc::clone(&self.state).start_background(Arc::clone(&stop)));

        ServerHandle {
            addr,
            state: self.state,
            stop,
            threads,
        }
    }
}

/// A running server: its address, state, and the means to stop it.
#[derive(Debug)]
pub struct ServerHandle<H: Handler = ServiceState> {
    addr: std::net::SocketAddr,
    state: Arc<H>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl<H: Handler> ServerHandle<H> {
    /// The address the server is listening on.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The shared handler state.
    pub fn state(&self) -> Arc<H> {
        Arc::clone(&self.state)
    }

    /// Stops accepting, drains the workers, winds down background
    /// workers (closing the job queue), and joins every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.state.stop_background();
        // poke accept() awake; it will observe the flag and return
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Blocks the calling thread until every server thread exits (i.e.
    /// forever, unless another thread calls for shutdown). Used by the
    /// `raysearchd` serve mode.
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    sender: &SyncSender<TcpStream>,
    stop: &AtomicBool,
    state: &dyn Handler,
) {
    loop {
        let accepted = listener.accept();
        if stop.load(Ordering::SeqCst) {
            // dropping the sender closes the queue; workers drain & exit
            return;
        }
        let Ok((stream, _peer)) = accepted else {
            // persistent failures (e.g. EMFILE under fd exhaustion)
            // would otherwise busy-spin this thread at 100% CPU
            std::thread::sleep(Duration::from_millis(10));
            continue;
        };
        match sender.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(mut stream)) => {
                // shed load rather than queueing without bound; the
                // Retry-After hint tells clients to back off briefly
                state.note_shed();
                let _ = Response::shed("server overloaded, try again").write_to(&mut stream, false);
            }
            Err(TrySendError::Disconnected(_)) => return,
        }
    }
}

fn worker_loop(receiver: &Mutex<Receiver<TcpStream>>, state: &dyn Handler, timeout: Duration) {
    loop {
        // hold the lock only for the dequeue, not while serving
        let next = receiver.lock().recv();
        match next {
            Ok(stream) => handle_connection(stream, state, timeout),
            Err(_) => return, // queue closed: shutdown
        }
    }
}

/// Serves one connection for its whole keep-alive lifetime.
fn handle_connection(stream: TcpStream, state: &dyn Handler, timeout: Duration) {
    if stream.set_read_timeout(Some(timeout)).is_err() {
        return;
    }
    // one response = one packet; without this, Nagle + delayed ACK can
    // stretch a cache hit to ~40 ms
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader) {
            Ok(req) => {
                let keep_alive = !req.wants_close();
                // isolate handler panics: without this, one panicking
                // request would silently shrink the worker pool for the
                // rest of the server's life
                let response =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| state.handle(&req)))
                        .unwrap_or_else(|_| {
                            Response::error(500, "internal error: request handler panicked")
                        });
                let close = response.status == 500 || !keep_alive;
                if response.write_to(&mut writer, !close).is_err() || close {
                    return;
                }
            }
            Err(HttpError::Closed) => return,
            Err(HttpError::Io(_)) => return, // timeout or broken transport
            Err(HttpError::Malformed(why)) => {
                let _ = Response::error(400, &why).write_to(&mut writer, false);
                return;
            }
            Err(HttpError::LengthRequired(why)) => {
                // close rather than keep alive: without a length we do
                // not know where (or if) the entity ends in the stream
                let _ = Response::error(411, &why).write_to(&mut writer, false);
                return;
            }
            Err(HttpError::TooLarge(why)) => {
                let _ = Response::error(413, &why).write_to(&mut writer, false);
                return;
            }
        }
        let _ = writer.flush();
    }
}
