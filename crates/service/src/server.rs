//! The TCP server: a fixed worker pool behind a bounded accept queue.
//!
//! One acceptor thread owns the `TcpListener` and pushes accepted
//! connections into a bounded `sync_channel`; `workers` threads pop
//! connections and drive each one through its whole keep-alive
//! lifetime. When the queue is full the acceptor sheds load immediately
//! with a `503` instead of letting the backlog grow without bound — a
//! deliberate, visible failure mode for overload.
//!
//! Shutdown is cooperative: [`ServerHandle::shutdown`] sets a flag,
//! pokes the listener with a throwaway connection to unblock `accept`,
//! closes the queue, and joins every thread.

use std::io::{BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use crate::api::ServiceState;
use crate::http::{read_request, HttpError, Response};

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Bounded depth of the accept queue; beyond it, connections get 503.
    pub queue_depth: usize,
    /// Total memo-cache capacity (entries).
    pub cache_capacity: usize,
    /// Number of memo-cache shards.
    pub cache_shards: usize,
    /// Per-connection read timeout while waiting for the next request.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .max(4),
            queue_depth: 128,
            cache_capacity: 4096,
            cache_shards: 16,
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// A bound, not-yet-running server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    state: Arc<ServiceState>,
    cfg: ServerConfig,
}

impl Server {
    /// Binds the configured address and allocates the service state.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let state = Arc::new(ServiceState::new(cfg.cache_capacity, cfg.cache_shards));
        Ok(Server {
            listener,
            state,
            cfg,
        })
    }

    /// The actually bound address (resolves an ephemeral port request).
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection failure.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared service state (for in-process probing and tests).
    pub fn state(&self) -> Arc<ServiceState> {
        Arc::clone(&self.state)
    }

    /// Starts the acceptor and worker threads, returning a handle that
    /// can stop them. The caller's thread is *not* consumed.
    ///
    /// # Panics
    ///
    /// Panics if the listener's address cannot be introspected.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr().expect("bound listener has an address");
        let stop = Arc::new(AtomicBool::new(false));
        let (sender, receiver) = std::sync::mpsc::sync_channel::<TcpStream>(self.cfg.queue_depth);
        let receiver = Arc::new(Mutex::new(receiver));

        let mut threads: Vec<JoinHandle<()>> = Vec::with_capacity(self.cfg.workers + 1);
        for _ in 0..self.cfg.workers.max(1) {
            let receiver = Arc::clone(&receiver);
            let state = Arc::clone(&self.state);
            let timeout = self.cfg.read_timeout;
            threads.push(std::thread::spawn(move || {
                worker_loop(&receiver, &state, timeout)
            }));
        }

        let acceptor = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || accept_loop(&self.listener, &sender, &stop))
        };
        threads.push(acceptor);

        ServerHandle {
            addr,
            state: self.state,
            stop,
            threads,
        }
    }
}

/// A running server: its address, state, and the means to stop it.
#[derive(Debug)]
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    state: Arc<ServiceState>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The shared service state.
    pub fn state(&self) -> Arc<ServiceState> {
        Arc::clone(&self.state)
    }

    /// Stops accepting, drains the workers, and joins every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // poke accept() awake; it will observe the flag and return
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Blocks the calling thread until every server thread exits (i.e.
    /// forever, unless another thread calls for shutdown). Used by the
    /// `raysearchd` serve mode.
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, sender: &SyncSender<TcpStream>, stop: &AtomicBool) {
    loop {
        let accepted = listener.accept();
        if stop.load(Ordering::SeqCst) {
            // dropping the sender closes the queue; workers drain & exit
            return;
        }
        let Ok((stream, _peer)) = accepted else {
            // persistent failures (e.g. EMFILE under fd exhaustion)
            // would otherwise busy-spin this thread at 100% CPU
            std::thread::sleep(Duration::from_millis(10));
            continue;
        };
        match sender.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(mut stream)) => {
                // shed load rather than queueing without bound
                let _ = Response::error(503, "server overloaded, try again")
                    .write_to(&mut stream, false);
            }
            Err(TrySendError::Disconnected(_)) => return,
        }
    }
}

fn worker_loop(receiver: &Mutex<Receiver<TcpStream>>, state: &ServiceState, timeout: Duration) {
    loop {
        // hold the lock only for the dequeue, not while serving
        let next = receiver.lock().recv();
        match next {
            Ok(stream) => handle_connection(stream, state, timeout),
            Err(_) => return, // queue closed: shutdown
        }
    }
}

/// Serves one connection for its whole keep-alive lifetime.
fn handle_connection(stream: TcpStream, state: &ServiceState, timeout: Duration) {
    if stream.set_read_timeout(Some(timeout)).is_err() {
        return;
    }
    // one response = one packet; without this, Nagle + delayed ACK can
    // stretch a cache hit to ~40 ms
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader) {
            Ok(req) => {
                let keep_alive = !req.wants_close();
                // isolate handler panics: without this, one panicking
                // request would silently shrink the worker pool for the
                // rest of the server's life
                let response =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| state.handle(&req)))
                        .unwrap_or_else(|_| {
                            Response::error(500, "internal error: request handler panicked")
                        });
                let close = response.status == 500 || !keep_alive;
                if response.write_to(&mut writer, !close).is_err() || close {
                    return;
                }
            }
            Err(HttpError::Closed) => return,
            Err(HttpError::Io(_)) => return, // timeout or broken transport
            Err(HttpError::Malformed(why)) => {
                let _ = Response::error(400, &why).write_to(&mut writer, false);
                return;
            }
            Err(HttpError::LengthRequired(why)) => {
                // close rather than keep alive: without a length we do
                // not know where (or if) the entity ends in the stream
                let _ = Response::error(411, &why).write_to(&mut writer, false);
                return;
            }
            Err(HttpError::TooLarge(why)) => {
                let _ = Response::error(413, &why).write_to(&mut writer, false);
                return;
            }
        }
        let _ = writer.flush();
    }
}
