//! Integration tests for the async job tier: a randomized mix of
//! campaign / montecarlo / evaluate payloads submitted via `POST /jobs`
//! must poll to `done` with result payloads *byte-identical* to the
//! synchronous endpoints — at replay concurrency 1 and 8 — plus the
//! lifecycle edges (cancel, admission shedding with `Retry-After`,
//! long-poll, cost threshold).

use raysearch_service::client::{fetch_json, HttpClient};
use raysearch_service::server::{Server, ServerConfig, ServerHandle};
use serde_json::Value;

/// A server whose job tier admits every payload (threshold 0), so the
/// randomized mix below can push cheap evaluates through the queue too.
fn spawn_jobs_server(workers: usize, compute_workers: usize) -> (ServerHandle, String) {
    let cfg = ServerConfig {
        workers,
        compute_workers,
        cache_capacity: 256,
        cache_shards: 4,
        job_cost_threshold: 0,
        ..ServerConfig::default()
    };
    let server = Server::bind(cfg).expect("bind ephemeral port");
    let handle = server.spawn();
    let addr = handle.addr().to_string();
    (handle, addr)
}

/// Deterministic split-mix style generator — the test must replay
/// identically, so no OS entropy.
fn next_rand(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let x = *state;
    (x ^ (x >> 31)).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 11
}

/// One randomized payload: `(endpoint, body)` drawn from the three
/// job-eligible endpoints with parameters kept debug-build friendly.
fn random_payload(state: &mut u64) -> (&'static str, String) {
    match next_rand(state) % 3 {
        0 => {
            let ids = ["e1", "e2", "e3", "e5", "e7", "e11"];
            let id = ids[(next_rand(state) % ids.len() as u64) as usize];
            let max_k = 2 + next_rand(state) % 5;
            ("campaign", format!(r#"{{"id":"{id}","max_k":{max_k}}}"#))
        }
        1 => {
            // montecarlo needs a searchable, non-trivial instance:
            // f < k < m(f+1)
            let m = 2 + next_rand(state) % 2;
            let f = 1 + next_rand(state) % 2;
            let k = f + 1 + next_rand(state) % (m * (f + 1) - f - 1);
            let samples = 200 + next_rand(state) % 800;
            let seed = next_rand(state) % 1000;
            (
                "montecarlo",
                format!(
                    r#"{{"m":{m},"k":{k},"f":{f},"horizon":1000,"samples":{samples},"seed":{seed}}}"#
                ),
            )
        }
        _ => {
            let m = 2 + next_rand(state) % 2;
            let k = m + 1 + next_rand(state) % 40;
            let f = next_rand(state) % 2;
            (
                "evaluate",
                format!(r#"{{"m":{m},"k":{k},"f":{f},"horizon":5000}}"#),
            )
        }
    }
}

/// Wraps an endpoint payload as a `POST /jobs` envelope: the same JSON
/// object with the `endpoint` tag (and a client label) spliced in.
fn envelope(endpoint: &str, body: &str, client: &str) -> String {
    format!(
        r#"{{"endpoint":"{endpoint}","client":"{client}",{}"#,
        body.trim_start_matches('{')
    )
}

/// Long-polls `GET /jobs/{id}?wait_micros=` until the record is
/// terminal; panics if it is anything but `done`.
fn poll_done(addr: &str, id: &str) -> Value {
    let target = format!("/jobs/{id}?wait_micros=1000000");
    for _ in 0..120 {
        let (status, record) = fetch_json(addr, "GET", &target, None).expect("poll job");
        assert_eq!(
            status,
            200,
            "poll should be 200: {}",
            record.to_json_string()
        );
        match record.get("state").and_then(Value::as_str) {
            Some("done") => return record,
            Some("queued" | "running") => {}
            other => panic!("job reached {other:?}: {}", record.to_json_string()),
        }
    }
    panic!("job {id} did not finish");
}

/// Submits `(endpoint, body)` as a job, polls it to `done`, and asserts
/// its payload is byte-identical to the synchronous endpoint's. When
/// `sync_first` the synchronous request computes (cold) and the job
/// hits the shared cache; otherwise the job computes and the
/// synchronous twin hits — identity must hold in both directions.
fn assert_job_matches_sync(addr: &str, endpoint: &str, body: &str, client: &str, sync_first: bool) {
    let sync_path = format!("/{endpoint}");
    let fetch_sync = || {
        let (status, doc) = fetch_json(addr, "POST", &sync_path, Some(body)).expect("sync request");
        assert_eq!(
            status,
            200,
            "sync {endpoint} {body}: {}",
            doc.to_json_string()
        );
        doc
    };
    let sync_before = sync_first.then(&fetch_sync);

    let (status, doc) = fetch_json(
        addr,
        "POST",
        "/jobs",
        Some(&envelope(endpoint, body, client)),
    )
    .expect("submit");
    assert_eq!(
        status,
        202,
        "submit {endpoint} {body}: {}",
        doc.to_json_string()
    );
    assert_eq!(doc.get("state").and_then(Value::as_str), Some("queued"));
    let id = doc
        .get("id")
        .and_then(Value::as_str)
        .expect("submit returns an id")
        .to_owned();
    let record = poll_done(addr, &id);
    let sync = sync_before.unwrap_or_else(fetch_sync);

    let job_payload = record
        .get("result")
        .unwrap_or_else(|| panic!("done job without result: {}", record.to_json_string()))
        .to_json_string();
    let sync_payload = sync
        .get("result")
        .expect("sync response has a result")
        .to_json_string();
    assert_eq!(
        job_payload, sync_payload,
        "job and sync payloads diverge for {endpoint} {body}"
    );
    assert!(
        record.get("cached").and_then(Value::as_bool).is_some(),
        "done job reports whether its compute was a cache hit"
    );
    assert!(
        record
            .get("queue_wait_micros")
            .and_then(Value::as_u64)
            .is_some(),
        "done job reports its queue wait"
    );
}

#[test]
fn randomized_job_mix_matches_sync_at_concurrency_1() {
    let (handle, addr) = spawn_jobs_server(4, 2);
    let mut state = 0x00c0ffee_u64;
    for round in 0..24 {
        let (endpoint, body) = random_payload(&mut state);
        // alternate which path computes cold, so identity is checked in
        // both directions through the shared memo cache
        assert_job_matches_sync(&addr, endpoint, &body, "mix-1", round % 2 == 0);
    }
    handle.shutdown();
}

#[test]
fn randomized_job_mix_matches_sync_at_concurrency_8() {
    let (handle, addr) = spawn_jobs_server(12, 4);
    std::thread::scope(|scope| {
        for lane in 0..8u64 {
            let addr = addr.clone();
            scope.spawn(move || {
                let mut state = 0xfeed_0000 + lane;
                let client = format!("lane-{lane}");
                for round in 0..6 {
                    let (endpoint, body) = random_payload(&mut state);
                    assert_job_matches_sync(&addr, endpoint, &body, &client, round % 2 == 0);
                }
            });
        }
    });
    handle.shutdown();
}

#[test]
fn queued_job_cancels_and_terminal_job_does_not() {
    // a single compute worker pinned busy by a slow montecarlo keeps
    // the follow-up job deterministically queued
    let (handle, addr) = spawn_jobs_server(4, 1);
    let slow = r#"{"m":3,"k":7,"f":2,"horizon":20000,"samples":200000,"seed":1}"#;
    let (status, _) = fetch_json(
        &addr,
        "POST",
        "/jobs",
        Some(&envelope("montecarlo", slow, "c")),
    )
    .unwrap();
    assert_eq!(status, 202);
    let quick = r#"{"id":"e2","max_k":3}"#;
    let (status, doc) = fetch_json(
        &addr,
        "POST",
        "/jobs",
        Some(&envelope("campaign", quick, "c")),
    )
    .unwrap();
    assert_eq!(status, 202);
    let id = doc.get("id").and_then(Value::as_str).unwrap().to_owned();

    let (status, doc) = fetch_json(&addr, "DELETE", &format!("/jobs/{id}"), None).unwrap();
    assert_eq!(status, 200, "queued job cancels: {}", doc.to_json_string());
    assert_eq!(doc.get("state").and_then(Value::as_str), Some("cancelled"));
    let (status, record) = fetch_json(&addr, "GET", &format!("/jobs/{id}"), None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        record.get("state").and_then(Value::as_str),
        Some("cancelled")
    );
    assert!(
        record.get("result").is_none(),
        "a cancelled job has no result"
    );

    // cancelling again is a 409: the job is already terminal
    let (status, doc) = fetch_json(&addr, "DELETE", &format!("/jobs/{id}"), None).unwrap();
    assert_eq!(status, 409, "{}", doc.to_json_string());
    handle.shutdown();
}

#[test]
fn admission_sheds_with_retry_after() {
    // one busy worker + per-client limit 16 against a queue of depth 64:
    // drown the queue with slow montecarlo jobs from distinct clients
    // until admission sheds, then assert the 503 carries Retry-After
    let (handle, addr) = spawn_jobs_server(4, 1);
    let mut client = HttpClient::connect(&addr).expect("connect");
    let mut shed = None;
    for i in 0..200 {
        let body = format!(r#"{{"m":3,"k":7,"f":2,"horizon":20000,"samples":200000,"seed":{i}}}"#);
        let env = envelope("montecarlo", &body, &format!("flood-{i}"));
        let (status, headers, body) = client
            .request_with_headers("POST", "/jobs", Some(&env), &[])
            .expect("flood submit");
        if status == 503 {
            shed = Some((headers, body));
            break;
        }
        assert_eq!(status, 202);
    }
    let (headers, body) = shed.expect("job queue should eventually shed");
    assert!(body.contains("full"), "shed names the full queue: {body}");
    assert_eq!(
        headers
            .iter()
            .find(|(n, _)| n == "retry-after")
            .map(|(_, v)| v.as_str()),
        Some("1"),
        "job-queue shed carries the back-off hint"
    );
    handle.shutdown();
}

#[test]
fn cost_threshold_redirects_cheap_evaluates() {
    // default threshold (not 0): a cheap evaluate is told to use the
    // synchronous endpoint instead of the queue
    let cfg = ServerConfig {
        workers: 3,
        cache_capacity: 64,
        cache_shards: 4,
        ..ServerConfig::default()
    };
    let server = Server::bind(cfg).expect("bind");
    let handle = server.spawn();
    let addr = handle.addr().to_string();
    let cheap = r#"{"m":2,"k":3,"f":1,"horizon":2000}"#;
    let (status, doc) = fetch_json(
        &addr,
        "POST",
        "/jobs",
        Some(&envelope("evaluate", cheap, "c")),
    )
    .unwrap();
    assert_eq!(status, 400, "{}", doc.to_json_string());
    assert!(doc
        .get("error")
        .and_then(Value::as_str)
        .is_some_and(|e| e.contains("cost threshold") && e.contains("/evaluate")));
    // campaigns are always heavy enough
    let (status, _) = fetch_json(
        &addr,
        "POST",
        "/jobs",
        Some(&envelope("campaign", r#"{"id":"e2","max_k":3}"#, "c")),
    )
    .unwrap();
    assert_eq!(status, 202);
    handle.shutdown();
}

#[test]
fn long_poll_returns_early_on_completion() {
    let (handle, addr) = spawn_jobs_server(4, 2);
    let body = r#"{"id":"e2","max_k":4}"#;
    let (status, doc) = fetch_json(
        &addr,
        "POST",
        "/jobs",
        Some(&envelope("campaign", body, "c")),
    )
    .unwrap();
    assert_eq!(status, 202);
    let id = doc.get("id").and_then(Value::as_str).unwrap().to_owned();
    // a 5s-capped long poll must come back as soon as the quick
    // campaign lands, not after the full wait
    let started = std::time::Instant::now();
    let (status, record) = fetch_json(
        &addr,
        "GET",
        &format!("/jobs/{id}?wait_micros=5000000"),
        None,
    )
    .unwrap();
    assert_eq!(status, 200);
    assert_eq!(record.get("state").and_then(Value::as_str), Some("done"));
    assert!(
        started.elapsed() < std::time::Duration::from_secs(4),
        "long poll should return on completion, not at the deadline"
    );
    handle.shutdown();
}
