//! Property tests for the consistent-hash router.
//!
//! Three guarantees are pinned here, because the scale-out layer's
//! whole value rests on them:
//!
//! 1. **Minimal disruption** — removing (or adding) one of `N` backends
//!    remaps only the keys that backend owned, roughly `1/N` of the
//!    population; every other key keeps its backend and therefore its
//!    memo entries.
//! 2. **Stability** — the key→backend assignment is a pure function of
//!    the id strings and key bytes: byte-identical across thread counts
//!    {1, 2, 8} and across process restarts (a golden fingerprint pins
//!    it forever).
//! 3. **Spelling invariance** — every spelling of the same logical
//!    request (query string vs JSON body, `1e4` vs `10000`, defaulted
//!    vs explicit parameters) derives the same routing key, so it lands
//!    on the same backend's cache.
//!
//! All randomness is seeded: proptest's sampler is seeded per test
//! name, and key populations are derived from the pinned FNV-1a hash —
//! no ambient randomness anywhere.

use proptest::prelude::*;
use raysearch_core::stable_hash64;
use raysearch_service::http::Request;
use raysearch_service::route::rendezvous_rank;
use raysearch_service::routing_key;

fn backend_ids(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("backend-{i}")).collect()
}

/// A deterministic population of `count` keys derived from `seed` by
/// the pinned hash — varied shapes (canonical-looking and raw-looking)
/// but reproducible bytes on every machine.
fn keys_from_seed(seed: u64, count: usize) -> Vec<String> {
    (0..count)
        .map(|i| {
            let h = stable_hash64(format!("{seed}:{i}").as_bytes());
            match h % 3 {
                0 => format!(
                    "evaluate:m={},k={},f={},h={}",
                    2 + h % 5,
                    1 + (h >> 8) % 40,
                    (h >> 16) % 4,
                    1000 * (1 + (h >> 24) % 9)
                ),
                1 => format!(
                    "closed_form:m={},k={},f={}",
                    2 + h % 4,
                    1 + (h >> 8) % 64,
                    (h >> 20) % 8
                ),
                _ => format!("raw:GET:/p{}:{}", h % 97, h >> 32),
            }
        })
        .collect()
}

/// The rendezvous winner for `key` over `ids`.
fn owner(ids: &[String], key: &str) -> usize {
    rendezvous_rank(ids, key)[0]
}

/// The full assignment as one comparable string: `key -> id` per line.
fn assignment(ids: &[String], keys: &[String]) -> String {
    let mut out = String::new();
    for key in keys {
        out.push_str(key);
        out.push_str(" -> ");
        out.push_str(&ids[owner(ids, key)]);
        out.push('\n');
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Removing one of `N` backends remaps exactly the keys it owned —
    /// the survival invariant is exact, and the remapped fraction is
    /// ~1/N (checked with wide tolerance; the exact invariant is the
    /// load-bearing one).
    #[test]
    fn removing_a_backend_remaps_only_its_keys(
        seed in 0u64..1_000_000_000,
        n in 3usize..7,
        victim in 0usize..7,
    ) {
        prop_assume!(victim < n);
        let keys = keys_from_seed(seed, 512);
        let full = backend_ids(n);
        let mut reduced = full.clone();
        let removed_id = reduced.remove(victim);

        let mut remapped = 0usize;
        for key in &keys {
            let before = &full[owner(&full, key)];
            let after = &reduced[owner(&reduced, key)];
            if *before == removed_id {
                remapped += 1;
            } else {
                // the exact minimal-disruption invariant: survivors
                // keep every key they owned
                prop_assert_eq!(before, after, "key {} moved between survivors", key);
            }
        }
        // the removed backend owned ~1/n of the keys
        let expected = keys.len() as f64 / n as f64;
        prop_assert!(
            (remapped as f64) < 2.5 * expected,
            "{remapped} of {} keys remapped, expected ~{expected:.0}",
            keys.len()
        );
        prop_assert!(
            (remapped as f64) > expected / 4.0,
            "{remapped} of {} keys remapped, expected ~{expected:.0}",
            keys.len()
        );
    }

    /// Adding a backend only *steals* keys for itself: every key either
    /// keeps its backend or moves to the newcomer.
    #[test]
    fn adding_a_backend_only_steals_for_itself(
        seed in 0u64..1_000_000_000,
        n in 2usize..6,
    ) {
        let keys = keys_from_seed(seed, 256);
        let old = backend_ids(n);
        let grown = backend_ids(n + 1);
        let new_id = &grown[n];
        for key in &keys {
            let before = &old[owner(&old, key)];
            let after = &grown[owner(&grown, key)];
            prop_assert!(
                after == before || after == new_id,
                "key {} moved from {} to {} (not the new backend)",
                key, before, after
            );
        }
    }
}

/// The assignment is byte-stable across thread counts: computing it
/// from 1, 2 and 8 threads concurrently produces identical bytes.
#[test]
fn assignment_is_byte_stable_across_thread_counts() {
    let ids = backend_ids(3);
    let keys = keys_from_seed(42, 256);
    let reference = assignment(&ids, &keys);
    for threads in [1usize, 2, 8] {
        let copies = std::thread::scope(|scope| {
            let joins: Vec<_> = (0..threads)
                .map(|_| scope.spawn(|| assignment(&ids, &keys)))
                .collect();
            joins
                .into_iter()
                .map(|j| j.join().expect("assignment thread panicked"))
                .collect::<Vec<String>>()
        });
        for copy in copies {
            assert_eq!(copy, reference, "{threads}-thread assignment diverged");
        }
    }
}

/// The golden fingerprint: the pinned hash of a fixed assignment. This
/// is the process-restart (and machine, and toolchain) stability
/// guarantee — if this value ever changes, every deployed router would
/// reshuffle its keyspace and cold every cache. Do not update it;
/// a mismatch is a bug in the hash or the ranking.
#[test]
fn assignment_fingerprint_is_pinned() {
    let ids = backend_ids(4);
    let keys = keys_from_seed(7, 128);
    let fingerprint = stable_hash64(assignment(&ids, &keys).as_bytes());
    assert_eq!(
        format!("{fingerprint:016x}"),
        "00652ca21b88bdbc",
        "rendezvous assignment drifted — routers would reshuffle on upgrade"
    );
}

fn get(path: &str, query: &[(&str, &str)]) -> Request {
    Request {
        method: "GET".to_owned(),
        version: "HTTP/1.1".to_owned(),
        path: path.to_owned(),
        query: query
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect(),
        headers: Vec::new(),
        body: Vec::new(),
    }
}

fn post(path: &str, body: &str) -> Request {
    Request {
        method: "POST".to_owned(),
        version: "HTTP/1.1".to_owned(),
        path: path.to_owned(),
        query: Vec::new(),
        headers: Vec::new(),
        body: body.as_bytes().to_vec(),
    }
}

/// Every spelling of the same logical request derives the same routing
/// key — the property that makes the hit rate survive scale-out.
#[test]
fn routing_key_is_spelling_invariant() {
    // query string vs JSON body, scientific notation vs integer
    let spellings = [
        post("/evaluate", "{\"m\":2,\"k\":3,\"f\":1,\"horizon\":10000}"),
        post("/evaluate", "{\"m\":2,\"k\":3,\"f\":1,\"horizon\":1e4}"),
        get(
            "/evaluate",
            &[("m", "2"), ("k", "3"), ("f", "1"), ("horizon", "10000")],
        ),
        // horizon defaults to 1e4 when omitted
        post("/evaluate", "{\"m\":2,\"k\":3,\"f\":1}"),
    ];
    let keys: Vec<String> = spellings.iter().map(routing_key).collect();
    assert_eq!(keys[0], "evaluate:m=2,k=3,f=1,h=10000");
    for key in &keys[1..] {
        assert_eq!(key, &keys[0]);
    }
}

/// Different logical requests derive different keys.
#[test]
fn routing_key_separates_distinct_requests() {
    let a = routing_key(&post("/evaluate", "{\"m\":2,\"k\":3,\"f\":1}"));
    let b = routing_key(&post("/evaluate", "{\"m\":2,\"k\":4,\"f\":1}"));
    let c = routing_key(&post("/verdict", "{\"m\":2,\"k\":3,\"f\":1}"));
    assert_ne!(a, b);
    assert_ne!(a, c);
    assert_ne!(b, c);
}

/// Requests that do not parse into a memo key still route
/// deterministically on the raw fallback key.
#[test]
fn routing_key_falls_back_to_raw_for_unroutable_requests() {
    let unknown = routing_key(&get("/no_such_endpoint", &[("a", "1")]));
    assert_eq!(unknown, "raw:GET:/no_such_endpoint?a=1:");

    let malformed = routing_key(&post("/evaluate", "{\"m\":\"not a number\"}"));
    assert!(malformed.starts_with("raw:POST:/evaluate:"));

    // raw keys still differ by body, so distinct requests spread out
    let other = routing_key(&post("/evaluate", "{\"k\":\"also bad\"}"));
    assert_ne!(malformed, other);
}

/// The ranking a router computes is the ranking any other process
/// computes — an offline harness can predict shard placement.
#[test]
fn ranking_is_reproducible_from_id_strings_alone() {
    let ids = backend_ids(5);
    for key in keys_from_seed(3, 64) {
        let rank = rendezvous_rank(&ids, &key);
        let again = rendezvous_rank(&ids, &key);
        assert_eq!(rank, again);
        // every backend appears exactly once
        let mut sorted = rank.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..ids.len()).collect::<Vec<_>>());
    }
}
