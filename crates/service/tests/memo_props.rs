//! Property test: the cached and uncached evaluation paths return
//! bit-identical `EvalReport`s across a random grid of `(m, k, f,
//! horizon)` instances.
//!
//! The memo layer stores the *serialized* payload, so the guarantee the
//! service makes — repeated identical requests get byte-identical
//! deterministic JSON bodies — reduces to: the payload computed through
//! [`ServiceState::memoized`] equals a fresh, cache-free call of
//! [`evaluate_optimal`] serialized the same way, and a second (cached)
//! request returns the same bytes again. Float fields are additionally
//! compared by `to_bits`, which is stricter than `==` (it distinguishes
//! `-0.0` and would catch a formatting round-trip loss).

use proptest::prelude::*;
use raysearch_core::evaluate_optimal;
use raysearch_service::http::Request;
use raysearch_service::ServiceState;
use serde_json::Value;

/// Builds a POST request the way a wire client would.
fn evaluate_request(m: u32, k: u32, f: u32, horizon: f64) -> Request {
    Request {
        method: "POST".to_owned(),
        version: "HTTP/1.1".to_owned(),
        path: "/evaluate".to_owned(),
        query: Vec::new(),
        headers: Vec::new(),
        body: format!("{{\"m\":{m},\"k\":{k},\"f\":{f},\"horizon\":{horizon}}}").into_bytes(),
    }
}

fn ratio_bits(payload: &Value) -> u64 {
    payload
        .get("result")
        .and_then(|r| r.get("report"))
        .and_then(|r| r.get("ratio"))
        .and_then(Value::as_f64)
        .expect("payload carries a ratio")
        .to_bits()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cached_equals_uncached_bit_for_bit(
        m in 2u32..5,
        k in 1u32..7,
        f in 0u32..4,
        horizon_exp in 3u32..6,
    ) {
        // restrict to the searchable regime (f < k and k < q = m(f+1))
        prop_assume!(f < k && k < m * (f + 1));
        let horizon = 10f64.powi(horizon_exp as i32);

        // uncached ground truth: straight through the core entry point
        let direct = evaluate_optimal(m, k, f, horizon).expect("searchable instance evaluates");
        let direct_report = serde_json::to_value(direct).unwrap().to_json_string();

        // the service path: first request computes, second is a memo hit
        let state = ServiceState::new(64, 4);
        let req = evaluate_request(m, k, f, horizon);
        let first = state.handle(&req);
        let second = state.handle(&req);
        prop_assert_eq!(first.status, 200);
        prop_assert_eq!(second.status, 200);

        let first_doc: Value = serde_json::from_str(&first.body).unwrap();
        let second_doc: Value = serde_json::from_str(&second.body).unwrap();
        prop_assert_eq!(first_doc.get("cached").and_then(Value::as_bool), Some(false));
        prop_assert_eq!(second_doc.get("cached").and_then(Value::as_bool), Some(true));

        // the payloads are byte-identical between the two requests...
        let first_payload = first_doc.get("result").unwrap().to_json_string();
        let second_payload = second_doc.get("result").unwrap().to_json_string();
        prop_assert_eq!(&first_payload, &second_payload);

        // ...and the embedded report equals the cache-free serialization
        let embedded = first_doc
            .get("result")
            .and_then(|r| r.get("report"))
            .expect("payload embeds the report")
            .to_json_string();
        prop_assert_eq!(&embedded, &direct_report);

        // float bit patterns agree exactly with the direct evaluation
        prop_assert_eq!(ratio_bits(&first_doc), direct.ratio.to_bits());
        prop_assert_eq!(ratio_bits(&second_doc), direct.ratio.to_bits());

        // the stats counters saw exactly one miss and one hit
        let stats = state.cache_stats();
        prop_assert_eq!(stats.misses, 1);
        prop_assert_eq!(stats.hits, 1);
        prop_assert_eq!(stats.entries, 1);
    }
}
