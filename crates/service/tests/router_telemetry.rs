//! Observability-layer integration tests: the router's `/stats` and
//! `/metrics` must never poll backends synchronously (pinned by a
//! request-counting backend stub), and `x-raysearch-trace` must round
//! trip router → backend → response at the raw socket level.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use raysearch_service::api::ServiceState;
use raysearch_service::http::{Request, Response};
use raysearch_service::route::{BackendSpec, RouterState};
use raysearch_service::server::{Handler, Server, ServerConfig};
use raysearch_service::telemetry::TRACE_HEADER;
use serde_json::Value;

fn small_config() -> ServerConfig {
    ServerConfig {
        workers: 4,
        cache_capacity: 256,
        cache_shards: 4,
        ..ServerConfig::default()
    }
}

/// A backend that counts every request it sees — the witness that the
/// router's client-facing endpoints never poll it synchronously.
#[derive(Debug, Default)]
struct CountingStub {
    hits: AtomicU64,
}

impl Handler for CountingStub {
    fn handle(&self, req: &Request) -> Response {
        self.hits.fetch_add(1, Ordering::SeqCst);
        match req.path.as_str() {
            "/healthz" => Response::ok("{\"status\":\"ok\"}"),
            "/stats" => Response::ok(
                "{\"requests_total\":7,\"shed_total\":1,\"cache\":{\"hits\":3,\"misses\":4}}",
            ),
            _ => Response::ok("{\"cached\":false,\"result\":{}}"),
        }
    }

    fn note_shed(&self) {}
}

fn get(path: &str) -> Request {
    Request {
        method: "GET".to_owned(),
        version: "HTTP/1.1".to_owned(),
        path: path.to_owned(),
        query: Vec::new(),
        headers: Vec::new(),
        body: Vec::new(),
    }
}

#[test]
fn router_stats_and_metrics_never_poll_backends_synchronously() {
    let stub = Arc::new(CountingStub::default());
    let backend = Server::bind_with(small_config(), Arc::clone(&stub))
        .expect("bind stub backend")
        .spawn();
    let addr = backend.addr().to_string();

    let state = RouterState::new(vec![BackendSpec::fixed("backend-0", &addr)], None);
    // exactly one health pass touches the backend (healthz + stats on
    // one keep-alive connection)…
    assert_eq!(state.check_backends_now(), 1);
    let baseline = stub.hits.load(Ordering::SeqCst);
    assert_eq!(baseline, 2, "one /healthz plus one /stats per pass");

    // …after which /stats and /metrics serve purely from the cache
    for _ in 0..10 {
        let stats = state.handle(&get("/stats"));
        assert_eq!(stats.status, 200);
        let metrics = state.handle(&get("/metrics"));
        assert_eq!(metrics.status, 200);
    }
    assert_eq!(
        stub.hits.load(Ordering::SeqCst),
        baseline,
        "/stats and /metrics must issue zero synchronous backend requests"
    );

    // the cached snapshot surfaces the backend's counters + staleness
    let stats = state.handle(&get("/stats"));
    let doc: Value = serde_json::from_str(&stats.body).expect("stats is JSON");
    let uint = |v: Option<&Value>| v.and_then(Value::as_u64).unwrap_or(u64::MAX);
    assert_eq!(uint(doc.get("cache_hits")), 3);
    assert_eq!(uint(doc.get("cache_misses")), 4);
    assert_eq!(uint(doc.get("backend_shed")), 1);
    assert_eq!(uint(doc.get("backend_requests")), 7);
    assert!(
        doc.get("stats_age_micros")
            .and_then(Value::as_u64)
            .is_some(),
        "aggregate staleness field present"
    );
    let backends = doc
        .get("backends")
        .and_then(Value::as_array)
        .expect("backends");
    assert_eq!(backends.len(), 1);
    assert_eq!(backends[0].get("reachable"), Some(&Value::Bool(true)));
    assert!(
        backends[0]
            .get("stats_age_micros")
            .and_then(Value::as_u64)
            .is_some(),
        "per-backend staleness field present"
    );

    // /metrics exposes the same cached counters in Prometheus text
    let metrics = state.handle(&get("/metrics"));
    assert!(metrics
        .body
        .contains("raysearch_router_backend_cache_hits_total{backend=\"backend-0\"} 3\n"));
    assert!(metrics
        .body
        .contains("raysearch_router_backend_requests_total{backend=\"backend-0\"} 7\n"));

    backend.shutdown();
}

/// Writes one request over a raw TCP socket and returns the full
/// response text (status line, headers, body).
fn raw_request(addr: &str, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    response
}

#[test]
fn trace_header_round_trips_router_to_backend_to_response() {
    let backend_state = Arc::new(ServiceState::new(256, 4));
    // make the backend log every request so we can see the trace there
    backend_state.telemetry().set_slow_threshold(0);
    let backend = Server::bind_with(small_config(), Arc::clone(&backend_state))
        .expect("bind backend")
        .spawn();
    let backend_addr = backend.addr().to_string();

    let router_state = Arc::new(RouterState::new(
        vec![BackendSpec::fixed("backend-0", &backend_addr)],
        None,
    ));
    assert_eq!(router_state.check_backends_now(), 1);
    let router = Server::bind_with(small_config(), Arc::clone(&router_state))
        .expect("bind router")
        .spawn();
    let router_addr = router.addr().to_string();

    // a client-supplied trace id is echoed verbatim by the router…
    let response = raw_request(
        &router_addr,
        &format!(
            "GET /closed_form?k=3&f=1 HTTP/1.1\r\nHost: x\r\n{TRACE_HEADER}: 00000000deadbeef\r\nConnection: close\r\n\r\n"
        ),
    );
    assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
    assert!(
        response.contains(&format!("{TRACE_HEADER}: 00000000deadbeef\r\n")),
        "router must echo the client's trace id: {response}"
    );

    // …and was forwarded to the backend (its slow log captured it)
    let slow = raw_request(
        &backend_addr,
        "GET /debug/slow HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert!(
        slow.contains("\"trace\":\"00000000deadbeef\""),
        "backend must join the propagated trace: {slow}"
    );

    // without a client header the router mints a 16-hex id
    let response = raw_request(
        &router_addr,
        "GET /closed_form?k=5&f=0 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    let minted = response
        .lines()
        .find_map(|line| line.strip_prefix(&format!("{TRACE_HEADER}: ")))
        .map(str::trim)
        .expect("response carries a trace header");
    assert_eq!(minted.len(), 16, "minted id is 16 hex digits: {minted:?}");
    assert!(minted.chars().all(|c| c.is_ascii_hexdigit()));

    router.shutdown();
    backend.shutdown();
}
