//! Integration tests: a real `raysearchd` server on an ephemeral port,
//! exercised over actual TCP sockets — endpoints, cache behaviour
//! (verified through `/stats` counters), canonicalized keys, error
//! paths, keep-alive, and the probe.

use raysearch_service::client::{fetch_json, HttpClient};
use raysearch_service::server::{Server, ServerConfig, ServerHandle};
use serde_json::Value;

fn spawn_server() -> (ServerHandle, String) {
    let cfg = ServerConfig {
        workers: 3,
        cache_capacity: 64,
        cache_shards: 4,
        ..ServerConfig::default()
    };
    let server = Server::bind(cfg).expect("bind ephemeral port");
    let handle = server.spawn();
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn result_of(doc: &Value) -> &Value {
    doc.get("result").expect("wrapped response has a result")
}

#[test]
fn all_endpoints_over_real_tcp() {
    let (handle, addr) = spawn_server();

    // healthz
    let (status, doc) = fetch_json(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(doc.get("status").and_then(Value::as_str), Some("ok"));

    // closed_form: A(1,0) = 9, and the eta form
    let (status, doc) = fetch_json(&addr, "GET", "/closed_form?k=1&f=0", None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        result_of(&doc).get("a").and_then(Value::as_f64),
        Some(9.0),
        "cow path closed form"
    );
    let (_, doc) = fetch_json(&addr, "GET", "/closed_form?m=3&k=3&f=0", None).unwrap();
    assert_eq!(
        result_of(&doc).get("regime").and_then(Value::as_str),
        Some("trivial"),
        "k = m(f+1) is trivial"
    );
    let (_, doc) = fetch_json(&addr, "POST", "/closed_form", Some(r#"{"eta":2.0}"#)).unwrap();
    assert!(result_of(&doc)
        .get("lambda")
        .and_then(Value::as_f64)
        .is_some_and(|l| l > 1.0));

    // evaluate matches the closed form
    let body = r#"{"m":2,"k":3,"f":1,"horizon":2000}"#;
    let (status, doc) = fetch_json(&addr, "POST", "/evaluate", Some(body)).unwrap();
    assert_eq!(status, 200);
    let expected = raysearch_bounds::a_line(3, 1).unwrap();
    let ratio = result_of(&doc)
        .get("report")
        .and_then(|r| r.get("ratio"))
        .and_then(Value::as_f64)
        .expect("evaluate returns a ratio");
    assert!((ratio - expected).abs() < 1e-2, "{ratio} vs {expected}");

    // verdict on the cow path
    let (status, doc) = fetch_json(
        &addr,
        "POST",
        "/verdict",
        Some(r#"{"k":1,"f":0,"horizon":1000,"eps":0.01}"#),
    )
    .unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        result_of(&doc)
            .get("falsified_below")
            .and_then(Value::as_bool),
        Some(true)
    );

    // campaign rows
    let (status, doc) = fetch_json(
        &addr,
        "POST",
        "/campaign",
        Some(r#"{"id":"e8","max_k":3,"threads":2}"#),
    )
    .unwrap();
    assert_eq!(status, 200);
    let campaigns = result_of(&doc)
        .get("campaigns")
        .and_then(Value::as_array)
        .expect("campaign response lists campaigns");
    assert!(!campaigns.is_empty());
    assert!(campaigns[0]
        .get("rows")
        .and_then(Value::as_array)
        .is_some_and(|rows| !rows.is_empty()));

    // stats shape
    let (status, doc) = fetch_json(&addr, "GET", "/stats", None).unwrap();
    assert_eq!(status, 200);
    assert!(doc.get("requests_total").and_then(Value::as_u64).unwrap() >= 6);
    assert!(doc.get("cache").and_then(|c| c.get("capacity")).is_some());

    handle.shutdown();
}

#[test]
fn repeated_requests_hit_the_cache_per_stats() {
    let (handle, addr) = spawn_server();
    let body = r#"{"m":3,"k":2,"f":0,"horizon":3000}"#;

    let hits_of = |addr: &str| {
        let (_, doc) = fetch_json(addr, "GET", "/stats", None).unwrap();
        doc.get("cache")
            .and_then(|c| c.get("hits"))
            .and_then(Value::as_u64)
            .unwrap()
    };

    let (_, first) = fetch_json(&addr, "POST", "/evaluate", Some(body)).unwrap();
    assert_eq!(first.get("cached").and_then(Value::as_bool), Some(false));
    let hits_before = hits_of(&addr);

    let (_, second) = fetch_json(&addr, "POST", "/evaluate", Some(body)).unwrap();
    assert_eq!(
        second.get("cached").and_then(Value::as_bool),
        Some(true),
        "identical request must be served from cache"
    );
    assert_eq!(hits_of(&addr), hits_before + 1, "stats must count the hit");

    // deterministic JSON bodies: the payloads are byte-identical
    assert_eq!(
        result_of(&first).to_json_string(),
        result_of(&second).to_json_string()
    );

    handle.shutdown();
}

#[test]
fn canonicalized_keys_share_one_entry() {
    let (handle, addr) = spawn_server();
    // three spellings of the same instance: float, int, exponent form
    let spellings = [
        r#"{"m":2,"k":3,"f":1,"horizon":10000.0}"#,
        r#"{"m":2,"k":3,"f":1,"horizon":10000}"#,
        r#"{"m":2,"k":3,"f":1,"horizon":1e4}"#,
        r#"{"m":2,"k":3,"f":1}"#, // DEFAULT_HORIZON is 1e4
    ];
    let mut cached_flags = Vec::new();
    for body in spellings {
        let (status, doc) = fetch_json(&addr, "POST", "/evaluate", Some(body)).unwrap();
        assert_eq!(status, 200);
        cached_flags.push(doc.get("cached").and_then(Value::as_bool).unwrap());
    }
    assert_eq!(
        cached_flags,
        vec![false, true, true, true],
        "logically equal instances must share one cache entry"
    );
    let (_, doc) = fetch_json(&addr, "GET", "/stats", None).unwrap();
    assert_eq!(
        doc.get("cache")
            .and_then(|c| c.get("entries"))
            .and_then(Value::as_u64),
        Some(1)
    );
    handle.shutdown();
}

#[test]
fn error_paths_are_well_formed_json() {
    let (handle, addr) = spawn_server();

    for (method, path, body, want) in [
        ("GET", "/nope", None, 404),
        ("DELETE", "/evaluate", None, 405),
        ("POST", "/evaluate", Some(r#"{"m":2}"#), 400), // missing k/f
        ("POST", "/evaluate", Some("not json"), 400),
        ("POST", "/evaluate", Some(r#"{"k":2,"f":2}"#), 400), // f = k impossible
        (
            "POST",
            "/evaluate",
            Some(r#"{"k":3,"f":1,"horizon":"NaN"}"#),
            400,
        ),
        ("POST", "/campaign", Some(r#"{"id":"e99"}"#), 400),
        (
            "POST",
            "/campaign",
            Some(r#"{"id":"e1","max_k":1000}"#),
            400,
        ),
        ("GET", "/closed_form?k=abc&f=0", None, 400),
        // serving ceilings: one request must not be able to OOM the server
        ("POST", "/evaluate", Some(r#"{"k":100000,"f":49999}"#), 400),
        (
            "POST",
            "/evaluate",
            Some(r#"{"k":3,"f":1,"horizon":1e30}"#),
            400,
        ),
        ("POST", "/verdict", Some(r#"{"m":100000,"k":3,"f":1}"#), 400),
        // within the m/k ceilings but outside the k·m·(f+2) work
        // envelope: one request must not monopolize a worker
        (
            "POST",
            "/evaluate",
            Some(r#"{"m":512,"k":511,"f":500}"#),
            400,
        ),
        // same principle for /montecarlo: the samples·k envelope
        (
            "POST",
            "/montecarlo",
            Some(r#"{"m":2,"k":4096,"f":4095,"samples":200000}"#),
            400,
        ),
    ] {
        let (status, doc) = fetch_json(&addr, method, path, body).unwrap();
        assert_eq!(status, want, "{method} {path} {body:?}");
        assert!(
            doc.get("error").and_then(Value::as_str).is_some(),
            "{method} {path}: error body missing"
        );
    }

    // a failed computation must not poison the cache for a valid retry
    let (status, doc) = fetch_json(
        &addr,
        "POST",
        "/evaluate",
        Some(r#"{"k":3,"f":1,"horizon":500}"#),
    )
    .unwrap();
    assert_eq!(status, 200);
    assert_eq!(doc.get("cached").and_then(Value::as_bool), Some(false));

    handle.shutdown();
}

#[test]
fn montecarlo_endpoint_end_to_end() {
    let (handle, addr) = spawn_server();
    let body = r#"{"m":2,"k":3,"f":1,"horizon":1000,"samples":3000,"seed":77,"faults":"uniform"}"#;

    // cold compute
    let (status, first) = fetch_json(&addr, "POST", "/montecarlo", Some(body)).unwrap();
    assert_eq!(status, 200);
    assert_eq!(first.get("cached").and_then(Value::as_bool), Some(false));
    let report = result_of(&first).get("report").expect("report");
    let mean = report.get("mean").and_then(Value::as_f64).unwrap();
    let closed_form = report.get("closed_form").and_then(Value::as_f64).unwrap();
    let max = report.get("max").and_then(Value::as_f64).unwrap();
    assert!(
        mean >= 1.0 && mean < closed_form,
        "{mean} vs Λ {closed_form}"
    );
    assert!(max <= closed_form + 1e-9, "max {max} above Λ {closed_form}");
    assert_eq!(report.get("samples").and_then(Value::as_u64), Some(3000));
    assert_eq!(
        result_of(&first)
            .get("comparison")
            .and_then(|c| c.get("within_worst_case"))
            .and_then(Value::as_bool),
        Some(true)
    );

    // cache hit: byte-identical payload
    let (status, second) = fetch_json(&addr, "POST", "/montecarlo", Some(body)).unwrap();
    assert_eq!(status, 200);
    assert_eq!(second.get("cached").and_then(Value::as_bool), Some(true));
    assert_eq!(
        result_of(&first).to_json_string(),
        result_of(&second).to_json_string(),
        "cache hit must replay the cold bytes"
    );

    // a *different* server instance cold-computes the same bytes: the
    // engine (not the cache) is the source of determinism
    let (handle2, addr2) = spawn_server();
    let (_, other) = fetch_json(&addr2, "POST", "/montecarlo", Some(body)).unwrap();
    assert_eq!(other.get("cached").and_then(Value::as_bool), Some(false));
    assert_eq!(
        result_of(&first).to_json_string(),
        result_of(&other).to_json_string(),
        "independent servers must agree bit-for-bit"
    );
    handle2.shutdown();

    // a different seed changes the payload (the seed is in the key)
    let reseeded =
        r#"{"m":2,"k":3,"f":1,"horizon":1000,"samples":3000,"seed":78,"faults":"uniform"}"#;
    let (_, third) = fetch_json(&addr, "POST", "/montecarlo", Some(reseeded)).unwrap();
    assert_eq!(third.get("cached").and_then(Value::as_bool), Some(false));
    assert_ne!(
        result_of(&first).to_json_string(),
        result_of(&third).to_json_string()
    );

    // error paths: bad model, oversized budget, out-of-regime instance,
    // oversized fleet — all uncached JSON 400s
    for bad in [
        r#"{"m":2,"k":3,"f":1,"faults":"bogus"}"#,
        r#"{"m":2,"k":3,"f":1,"samples":100000000}"#,
        r#"{"m":2,"k":3,"f":1,"samples":0}"#,
        r#"{"m":2,"k":4,"f":1}"#,   // k = m(f+1): trivial regime
        r#"{"m":2,"k":140,"f":1}"#, // above the Monte-Carlo fleet ceiling
        r#"{"m":2,"k":3,"f":1,"faults":"iid","p":1.5}"#,
    ] {
        let (status, doc) = fetch_json(&addr, "POST", "/montecarlo", Some(bad)).unwrap();
        assert_eq!(status, 400, "{bad}");
        assert!(doc.get("error").is_some(), "{bad}: no error body");
        assert!(
            doc.get("cached").is_none(),
            "{bad}: error carried a cache flag"
        );
    }

    handle.shutdown();
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let (handle, addr) = spawn_server();
    let mut client = HttpClient::connect(&addr).unwrap();
    for i in 0..20 {
        let (status, text) = client.request("GET", "/healthz", None).unwrap();
        assert_eq!(status, 200, "request {i}");
        assert!(text.contains("\"ok\""));
    }
    // a malformed request closes the connection with a 400
    let (status, _) = client.request("BAD REQUEST LINE", "/x", None).unwrap();
    assert_eq!(status, 400);
    handle.shutdown();
}

#[test]
fn concurrent_clients_get_consistent_answers() {
    let (handle, addr) = spawn_server();
    let bodies: Vec<String> = [(2u32, 1u32, 0u32), (2, 3, 1), (3, 2, 0), (4, 3, 0)]
        .iter()
        .map(|(m, k, f)| format!("{{\"m\":{m},\"k\":{k},\"f\":{f},\"horizon\":2000}}"))
        .collect();
    std::thread::scope(|scope| {
        for worker in 0..3 {
            let addr = &addr;
            let bodies = &bodies;
            scope.spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                let mut seen: Vec<Option<String>> = vec![None; bodies.len()];
                for round in 0..10 {
                    let idx = (worker + round) % bodies.len();
                    let (status, text) = client
                        .request("POST", "/evaluate", Some(&bodies[idx]))
                        .unwrap();
                    assert_eq!(status, 200);
                    let doc: Value = serde_json::from_str(&text).unwrap();
                    let payload = doc.get("result").unwrap().to_json_string();
                    match &seen[idx] {
                        None => seen[idx] = Some(payload),
                        Some(prev) => assert_eq!(prev, &payload, "nondeterministic payload"),
                    }
                }
            });
        }
    });
    handle.shutdown();
}

#[test]
fn post_without_content_length_gets_a_clean_411() {
    use std::io::{Read, Write};

    let (handle, addr) = spawn_server();
    // a raw socket, below HttpClient: the client always sends
    // Content-Length, and this test exists precisely to cover peers
    // that do not
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"POST /evaluate HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\n\r\n{\"k\":3,\"f\":1}")
        .unwrap();
    // the server must answer 411 immediately (no stall waiting for an
    // entity it cannot delimit) and close, never misparsing the stray
    // body bytes as a second request
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(
        response.starts_with("HTTP/1.1 411 Length Required\r\n"),
        "expected 411, got: {response:?}"
    );
    assert!(response.contains("Connection: close"));
    assert!(response.contains("Content-Length"));
    assert_eq!(
        response.matches("HTTP/1.1").count(),
        1,
        "body bytes must not be parsed as a second request: {response:?}"
    );

    // the server stays healthy for well-formed traffic afterwards
    let (status, _) = fetch_json(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    handle.shutdown();
}

#[test]
fn large_fleet_evaluate_end_to_end() {
    let (handle, addr) = spawn_server();
    // k = 199 was unservable before the log-domain core (turn points
    // overflowed to an error); now it serves the closed form exactly
    let body = r#"{"m":2,"k":199,"f":99,"horizon":1e6}"#;
    let (status, doc) = fetch_json(&addr, "POST", "/evaluate", Some(body)).unwrap();
    assert_eq!(status, 200);
    let ratio = result_of(&doc)
        .get("report")
        .and_then(|r| r.get("ratio"))
        .and_then(Value::as_f64)
        .expect("large-fleet evaluate returns a ratio");
    let theory = raysearch_bounds::a_rays(2, 199, 99).unwrap();
    assert!(
        ratio.is_finite() && ((ratio - theory) / theory).abs() < 1e-6,
        "{ratio} vs {theory}"
    );
    // and the repeat is a byte-identical cache hit
    let (_, doc2) = fetch_json(&addr, "POST", "/evaluate", Some(body)).unwrap();
    assert_eq!(doc2.get("cached").and_then(Value::as_bool), Some(true));
    assert_eq!(
        result_of(&doc).to_json_string(),
        result_of(&doc2).to_json_string()
    );
    handle.shutdown();
}

#[test]
fn probe_passes_against_a_fresh_server() {
    let (handle, addr) = spawn_server();
    let lines = raysearch_service::probe::run_probe(&addr).expect("probe passes");
    assert!(lines.len() >= 8, "probe should run all checks: {lines:?}");
    handle.shutdown();
}
