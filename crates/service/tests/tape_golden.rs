//! Golden test pinning the tape wire format.
//!
//! Records the canonical 20-request smoke mix through an in-process
//! router (one in-process backend — fully hermetic, no child
//! processes) and byte-compares the resulting tape to the committed
//! fixture `tests/fixtures/smoke.tape`. Any drift in the line format,
//! the field order, the digest function, the canonicalization of
//! request targets, *or* the service's response bytes shows up here as
//! a fixture diff.
//!
//! To regenerate the fixture after an intentional format change:
//!
//! ```text
//! RAYSEARCH_REGEN_TAPE=1 cargo test -p raysearch-service --test tape_golden
//! ```

use std::path::PathBuf;
use std::sync::Arc;

use raysearch_service::client::HttpClient;
use raysearch_service::replay::smoke_mix;
use raysearch_service::route::{BackendSpec, RouterState};
use raysearch_service::server::{Server, ServerConfig};
use raysearch_service::tape::{Tape, TapeEntry, TapeRecorder};
use raysearch_service::{ServiceState, TRACE_HEADER};

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("smoke.tape")
}

/// Records the smoke mix through a single-backend in-process router
/// and returns the canonical tape text. With `trace_all`, both tiers
/// sample every span trace and a `/debug/trace` index + per-id fetch is
/// interleaved after every smoke request — none of which may perturb
/// the tape.
fn record_smoke_tape_opts(tag: &str, trace_all: bool) -> String {
    let dir = std::env::temp_dir().join(format!("raysearch-golden-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let tape_path = dir.join("smoke.tape");

    // the backend: a real ServiceState server, in-process
    let backend_cfg = ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    };
    let backend_state = Arc::new(ServiceState::new(256, 4));
    if trace_all {
        backend_state.telemetry().set_trace_sample(1);
    }
    let backend = Server::bind_with(backend_cfg, backend_state)
        .expect("bind backend")
        .spawn();
    let backend_addr = backend.addr().to_string();

    // the recording router over that one backend
    let recorder = TapeRecorder::create(&tape_path).expect("create tape");
    let state = Arc::new(RouterState::new(
        vec![BackendSpec::fixed("backend-0", &backend_addr)],
        Some(recorder),
    ));
    if trace_all {
        state.telemetry().set_trace_sample(1);
    }
    assert_eq!(state.check_backends_now(), 1, "backend must be healthy");
    let router_cfg = ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    };
    let router = Server::bind_with(router_cfg, state)
        .expect("bind router")
        .spawn();
    let router_addr = router.addr().to_string();

    // one keep-alive connection, sequential: ticks equal mix order
    let mut client = HttpClient::connect(&router_addr).expect("connect router");
    for (method, target, body) in smoke_mix() {
        let (_, headers, _) = client
            .request_with_headers(method, &target, Some(&body), &[])
            .expect("smoke request");
        if trace_all {
            // hammer the trace endpoints mid-recording: they are
            // router-local and must never land on the tape
            client
                .request("GET", "/debug/trace", None)
                .expect("trace index fetch");
            if let Some((_, id)) = headers.iter().find(|(n, _)| n == TRACE_HEADER) {
                client
                    .request("GET", &format!("/debug/trace/{id}"), None)
                    .expect("trace fetch");
            }
        }
    }

    router.shutdown();
    backend.shutdown();
    let text = std::fs::read_to_string(&tape_path).expect("read recorded tape");
    std::fs::remove_dir_all(&dir).ok();
    text
}

/// The plain recording path the golden fixture pins.
fn record_smoke_tape() -> String {
    record_smoke_tape_opts("plain", false)
}

/// The recorded smoke mix is byte-identical to the committed fixture.
#[test]
fn recorded_smoke_mix_matches_the_committed_fixture() {
    let recorded = record_smoke_tape();
    let path = fixture_path();
    if std::env::var("RAYSEARCH_REGEN_TAPE").is_ok() {
        std::fs::write(&path, &recorded).expect("write fixture");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "read {}: {e} (run with RAYSEARCH_REGEN_TAPE=1)",
            path.display()
        )
    });
    assert_eq!(
        recorded,
        committed,
        "recorded tape differs from {} — the tape format or the service's \
         response bytes drifted; regenerate with RAYSEARCH_REGEN_TAPE=1 only \
         if the change is intentional",
        path.display()
    );
}

/// Tracing is invisible to tapes: with sampling always-on on both
/// tiers and `/debug/trace` fetches interleaved between the smoke
/// requests, the recorded tape is still byte-identical to the
/// committed fixture — trace endpoints are never recorded and span
/// capture never changes a response body.
#[test]
fn tracing_leaves_the_tape_byte_identical() {
    let traced = record_smoke_tape_opts("traced", true);
    let path = fixture_path();
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "read {}: {e} (run with RAYSEARCH_REGEN_TAPE=1)",
            path.display()
        )
    });
    assert_eq!(
        traced, committed,
        "recording with tracing enabled changed the tape bytes"
    );
}

/// The fixture has the expected shape: 20 entries, dense ticks in mix
/// order, targets matching the smoke mix, and the error statuses the
/// mix deliberately includes.
#[test]
fn fixture_covers_the_smoke_mix() {
    let tape = Tape::load(&fixture_path()).expect("load fixture");
    let mix = smoke_mix();
    assert_eq!(tape.entries.len(), mix.len());
    for (i, (entry, (method, target, body))) in tape.entries.iter().zip(&mix).enumerate() {
        assert_eq!(entry.tick, i as u64, "ticks are dense and in mix order");
        assert_eq!(&entry.method, method);
        assert_eq!(&entry.target, target);
        assert_eq!(&entry.body, body);
        assert_eq!(entry.digest.len(), 16, "digests are 16 hex digits");
    }
    // repeats pin identical digests: same logical request, same bytes
    let by_target = |t: &str, b: &str| {
        tape.entries
            .iter()
            .filter(|e| e.target == t && e.body == b)
            .collect::<Vec<_>>()
    };
    let repeats = by_target("/evaluate", "{\"m\":2,\"k\":3,\"f\":1,\"horizon\":2000}");
    assert_eq!(repeats.len(), 2);
    assert_eq!(repeats[0].digest, repeats[1].digest);
    assert_eq!(repeats[0].len, repeats[1].len);
    // deterministic errors are recorded too
    assert!(tape.entries.iter().any(|e| e.status == 400));
    assert!(tape.entries.iter().any(|e| e.status == 404));
    assert!(tape.entries.iter().all(|e| e.status != 503));
}

/// Every fixture line round-trips parse → re-serialize byte-identically,
/// and the whole tape round-trips through `canonical_text`.
#[test]
fn fixture_round_trips_byte_identically() {
    let path = fixture_path();
    let text = std::fs::read_to_string(&path).expect("read fixture");
    for (i, line) in text.lines().enumerate() {
        let entry = TapeEntry::from_line(line)
            .unwrap_or_else(|e| panic!("{}:{}: {e}", path.display(), i + 1));
        assert_eq!(entry.to_line(), line, "line {} did not round-trip", i + 1);
    }
    let tape = Tape::load(&path).expect("load fixture");
    assert_eq!(tape.canonical_text(), text);
}
