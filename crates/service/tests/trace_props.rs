//! Property tests for the tracing layer, plus the thread-count
//! invariance gate for sampled trace *counts*.
//!
//! Three guarantees are pinned here:
//!
//! 1. **Bounded ring** — the completed-trace ring never holds more than
//!    its configured capacity, evicts oldest-first within each shard,
//!    and accounts every eviction in `dropped_total`.
//! 2. **Byte-identical round trip** — any span tree serializes through
//!    `SpanData::to_json`, reparses through the vendored JSON parser
//!    and `SpanData::from_json`, and re-serializes to the *same bytes*,
//!    including hostile names/attrs (quotes, backslashes, newlines,
//!    non-ASCII).
//! 3. **Thread-count invariance** — replaying the committed smoke tape
//!    at concurrency {1, 2, 8} keeps the same *number* of sampled
//!    traces on both tiers, because sampling draws from a deterministic
//!    SplitMix64 counter sequence, never from timing.
//!
//! All randomness is seeded: proptest's sampler is seeded per test
//! name, and tree shapes derive from [`splitmix64`] chains.

use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;
use raysearch_core::trace::CompletedTrace;
use raysearch_core::{splitmix64, SpanData, TraceRecorder};
use raysearch_service::replay::replay;
use raysearch_service::route::{BackendSpec, RouterState};
use raysearch_service::server::{Server, ServerConfig};
use raysearch_service::tape::Tape;
use raysearch_service::ServiceState;

/// A leaf with a name drawn from a pool that covers every JSON escape
/// class: plain, quote, backslash, control, non-ASCII.
fn nasty_string(h: u64) -> String {
    const POOL: [&str; 8] = [
        "evaluate",
        "with \"quotes\"",
        "back\\slash",
        "line\nbreak\ttab",
        "ctrl\u{1}byte",
        "émigré-λ",
        "",
        "plain_span_2",
    ];
    POOL[(h % POOL.len() as u64) as usize].to_owned()
}

/// A deterministic span tree derived from `seed`: up to three levels,
/// with offsets, attrs and child counts all chained through the mixer.
fn tree_from_seed(seed: u64, depth: u32) -> SpanData {
    let a = splitmix64(seed);
    let b = splitmix64(a);
    let start = a % 1_000_000;
    // attrs render as a JSON object, so keys must be unique — as they
    // are for real spans, where each key is written once
    let mut attrs: Vec<(String, String)> = (0..b % 3)
        .map(|i| {
            let h = splitmix64(b.wrapping_add(i));
            (nasty_string(h), nasty_string(splitmix64(h)))
        })
        .collect();
    let mut seen = std::collections::HashSet::new();
    attrs.retain(|(k, _)| seen.insert(k.clone()));
    let mut span = SpanData {
        name: nasty_string(b),
        start_micros: start,
        end_micros: start + b % 1_000_000,
        attrs,
        children: Vec::new(),
    };
    if depth > 0 {
        span.children = (0..a % 4)
            .map(|i| tree_from_seed(splitmix64(seed ^ (i + 1)), depth - 1))
            .collect();
    }
    span
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The ring never exceeds capacity, evicts oldest-first per shard,
    /// and `stored + dropped` accounts for every insert.
    #[test]
    fn ring_is_bounded_and_drops_oldest_first(
        shards in 1usize..5,
        per_shard in 1usize..6,
        inserts in 0usize..40,
    ) {
        let capacity = shards * per_shard;
        let recorder = TraceRecorder::with_capacity(capacity, shards);
        for key in 0..inserts as u64 {
            recorder.store(CompletedTrace {
                key,
                trace: format!("{key:016x}"),
                root: SpanData::leaf("request", 0, key),
            });
        }
        prop_assert!(recorder.stored() <= capacity as u64);
        prop_assert_eq!(
            recorder.stored() + recorder.dropped_total(),
            inserts as u64
        );
        // per shard, exactly the newest `per_shard` keys survive
        for key in 0..inserts as u64 {
            let later_same_shard = (key + 1..inserts as u64)
                .filter(|k| k % shards as u64 == key % shards as u64)
                .count();
            let expect_kept = later_same_shard < per_shard;
            prop_assert_eq!(
                recorder.get(key).is_some(),
                expect_kept,
                "key {} (later same-shard inserts: {})",
                key,
                later_same_shard
            );
        }
    }

    /// Span trees round-trip to_json → parse → from_json → to_json
    /// byte-identically, across hostile strings and nested shapes.
    #[test]
    fn span_trees_round_trip_byte_identically(seed in 0u64..u64::MAX) {
        let tree = tree_from_seed(seed, 3);
        let json = tree.to_json();
        let value = serde_json::from_str(&json)
            .map_err(|e| TestCaseError::Fail(format!("parse: {e:?}")))?;
        let reparsed = SpanData::from_json(&value).map_err(TestCaseError::Fail)?;
        prop_assert_eq!(reparsed.to_json(), json);
    }
}

fn fixture_tape() -> Tape {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("smoke.tape");
    Tape::load(&path).expect("load smoke fixture")
}

/// Replays the committed smoke tape at `concurrency` against a fresh
/// in-process fleet with 1-in-2 sampling and the slow-path disabled
/// (threshold `u64::MAX`), so every keep decision comes from the
/// deterministic sample counter. Returns (router, backend) stored
/// trace counts.
fn traced_replay_counts(concurrency: usize) -> (u64, u64) {
    let tape = fixture_tape();
    let cfg = ServerConfig {
        workers: concurrency.max(2) + 2,
        ..ServerConfig::default()
    };

    let backend_state = Arc::new(ServiceState::new(256, 4));
    backend_state.telemetry().set_trace_sample(2);
    backend_state.telemetry().set_slow_threshold(u64::MAX);
    let backend = Server::bind_with(cfg.clone(), Arc::clone(&backend_state))
        .expect("bind backend")
        .spawn();

    let state = Arc::new(RouterState::new(
        vec![BackendSpec::fixed("backend-0", &backend.addr().to_string())],
        None,
    ));
    state.telemetry().set_trace_sample(2);
    state.telemetry().set_slow_threshold(u64::MAX);
    // one explicit health pass, no background thread: the number of
    // requests each tier observes must not depend on wall time
    assert_eq!(state.check_backends_now(), 1, "backend must be healthy");
    let router = Server::bind_with(cfg, Arc::clone(&state))
        .expect("bind router")
        .spawn();

    let report = replay(&router.addr().to_string(), &tape, concurrency).expect("replay");
    assert_eq!(report.mismatched, 0, "replay must verify byte-identically");
    let counts = (
        state.telemetry().recorder().stored(),
        backend_state.telemetry().recorder().stored(),
    );
    router.shutdown();
    backend.shutdown();
    counts
}

/// Concurrency changes which request gets which sampling draw, but
/// never how many draws say "keep": trace counts match across thread
/// counts {1, 2, 8}.
#[test]
fn sampled_trace_counts_are_thread_count_invariant() {
    let baseline = traced_replay_counts(1);
    assert!(
        baseline.0 > 0 && baseline.1 > 0,
        "1-in-2 sampling over 20 requests must keep something: {baseline:?}"
    );
    for concurrency in [2usize, 8] {
        let counts = traced_replay_counts(concurrency);
        assert_eq!(
            counts, baseline,
            "trace counts drifted at concurrency {concurrency}"
        );
    }
}
