//! Kill-a-backend integration test: a router over three real
//! `raysearchd` child processes keeps serving byte-identical responses
//! when one backend is SIGKILLed mid-replay, grows only the failover
//! counter, reports itself degraded, and recovers once the backend is
//! respawned (on a fresh ephemeral port, rediscovered through its port
//! file).
//!
//! Health passes are driven manually (`check_backends_now`) instead of
//! through the background thread, so the router's health view at every
//! step — stale right after the kill, refreshed after the pass — is
//! deterministic.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use raysearch_service::backends::BackendFleet;
use raysearch_service::client::HttpClient;
use raysearch_service::http::Request;
use raysearch_service::replay::{replay, smoke_mix};
use raysearch_service::route::{rendezvous_rank, RouterState};
use raysearch_service::routing_key;
use raysearch_service::server::{Server, ServerConfig};
use raysearch_service::tape::{Tape, TapeEntry, TapeRecorder};
use serde_json::Value;

/// Rebuilds the `Request` a tape entry describes, for offline shard
/// prediction.
fn entry_request(entry: &TapeEntry) -> Request {
    let (path, query_text) = match entry.target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (entry.target.as_str(), ""),
    };
    let query = query_text
        .split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_owned(), v.to_owned()),
            None => (pair.to_owned(), String::new()),
        })
        .collect();
    Request {
        method: entry.method.clone(),
        version: "HTTP/1.1".to_owned(),
        path: path.to_owned(),
        query,
        headers: Vec::new(),
        body: entry.body.as_bytes().to_vec(),
    }
}

/// Fetches the router's `/healthz` status string.
fn healthz_status(addr: &str) -> String {
    let (status, body) = HttpClient::connect(addr)
        .expect("connect router")
        .request("GET", "/healthz", None)
        .expect("healthz");
    assert_eq!(status, 200);
    let doc: Value = serde_json::from_str(&body).expect("healthz is JSON");
    doc.get("status")
        .and_then(Value::as_str)
        .expect("healthz carries a status")
        .to_owned()
}

fn router_config() -> ServerConfig {
    ServerConfig {
        workers: 8,
        ..ServerConfig::default()
    }
}

#[test]
fn sigkilled_backend_fails_over_without_wrong_bytes() {
    let bin = PathBuf::from(env!("CARGO_BIN_EXE_raysearchd"));
    let dir = std::env::temp_dir().join(format!("raysearch-kill-{}", std::process::id()));
    let mut fleet = BackendFleet::spawn(&bin, 3, &dir).expect("spawn fleet");
    fleet
        .wait_ready(Duration::from_secs(10))
        .expect("backends ready");

    // --- record a tape through a recording router over the fleet ---
    let tape_path = dir.join("kill.tape");
    {
        let recorder = TapeRecorder::create(&tape_path).expect("create tape");
        let state = Arc::new(RouterState::new(fleet.specs(), Some(recorder)));
        assert_eq!(state.check_backends_now(), 3, "all backends healthy");
        let router = Server::bind_with(router_config(), state)
            .expect("bind recording router")
            .spawn();
        let addr = router.addr().to_string();
        let mut client = HttpClient::connect(&addr).expect("connect recording router");
        for (method, target, body) in smoke_mix() {
            client
                .request(method, &target, Some(&body))
                .expect("recording request");
        }
        router.shutdown();
    }
    let tape = Tape::load(&tape_path).expect("load tape");
    assert_eq!(tape.entries.len(), smoke_mix().len());

    // --- a fresh router over the same (still warm) fleet ---
    let state = Arc::new(RouterState::new(fleet.specs(), None));
    assert_eq!(state.check_backends_now(), 3);
    let router = Server::bind_with(router_config(), Arc::clone(&state))
        .expect("bind router")
        .spawn();
    let addr = router.addr().to_string();
    assert_eq!(healthz_status(&addr), "ok");

    // healthy replay: everything matches, nothing fails over
    let healthy_pass = replay(&addr, &tape, 4).expect("healthy replay");
    assert_eq!(healthy_pass.mismatched, 0, "{}", healthy_pass.fingerprint());
    assert_eq!(healthy_pass.transport_errors, 0);
    assert_eq!(healthy_pass.sheds, 0);
    assert_eq!(state.failover_total(), 0);

    // --- pick the victim: the backend owning the most tape keys, so
    // the kill is guaranteed to sit in the replay's path ---
    let ids = state.backend_ids();
    let mut owned = vec![0usize; ids.len()];
    for entry in &tape.entries {
        let key = routing_key(&entry_request(entry));
        owned[rendezvous_rank(&ids, &key)[0]] += 1;
    }
    let victim = (0..ids.len()).max_by_key(|&i| owned[i]).unwrap();
    assert!(owned[victim] > 0, "victim owns no keys: {owned:?}");

    // SIGKILL it and replay immediately — the router's health view is
    // still stale, so requests the victim owned hit a dead socket and
    // must fail over down the rendezvous ranking
    fleet.kill(victim);
    let degraded_pass = replay(&addr, &tape, 4).expect("degraded replay");
    assert_eq!(
        degraded_pass.mismatched, 0,
        "wrong bytes after kill: {:?}",
        degraded_pass.mismatch_details
    );
    assert_eq!(
        degraded_pass.transport_errors, 0,
        "failover must hide the crash"
    );
    assert_eq!(degraded_pass.sheds, 0);
    assert_eq!(degraded_pass.matched, degraded_pass.requests);
    assert!(
        state.failover_total() > 0,
        "the kill only shows up as failover-counter growth"
    );

    // a health pass notices; /healthz degrades
    assert_eq!(state.check_backends_now(), 2);
    assert_eq!(healthz_status(&addr), "degraded");

    // --- respawn under the same logical id (new ephemeral port) ---
    fleet.respawn(victim).expect("respawn victim");
    let deadline = Instant::now() + Duration::from_secs(10);
    while state.check_backends_now() < 3 {
        assert!(
            Instant::now() < deadline,
            "respawned backend never turned healthy"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_eq!(healthz_status(&addr), "ok");

    // recovered replay: byte-identical again, no new failover hops
    let failovers_before = state.failover_total();
    let recovered_pass = replay(&addr, &tape, 4).expect("recovered replay");
    assert_eq!(
        recovered_pass.mismatched,
        0,
        "{}",
        recovered_pass.fingerprint()
    );
    assert_eq!(recovered_pass.transport_errors, 0);
    assert_eq!(recovered_pass.matched, recovered_pass.requests);
    assert_eq!(state.failover_total(), failovers_before);

    router.shutdown();
    drop(fleet);
    std::fs::remove_dir_all(&dir).ok();
}
