//! `raysearch` — parallel search on the line and on `m` rays with faulty
//! robots.
//!
//! A production-quality reproduction of **Kupavskii & Welzl, “Lower Bounds
//! for Searching Robots, some Faulty”, PODC 2018** (arXiv:1707.05077): the
//! tight competitive ratios for `k`-robot search with `f` crash-type
//! faults, the covering relaxations and potential-function lower-bound
//! machinery, the optimal cyclic exponential strategies, fault adversaries
//! and an exact competitive-ratio evaluator.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `raysearch-sim` | time, geometry, itineraries, trajectories, visit engine |
//! | [`strategies`] | `raysearch-strategies` | cow-path, cyclic exponential, baselines, random |
//! | [`faults`] | `raysearch-faults` | crash & Byzantine adversaries, claim verification |
//! | [`bounds`] | `raysearch-bounds` | closed forms `A(k,f)`, `A(m,k,f)`, `C(k,q)`, `C(η)` |
//! | [`cover`] | `raysearch-cover` | covering settings, standardization, potential function |
//! | [`core`] | `raysearch-core` | problems, exact evaluator, tightness verdicts, sweeps, campaign engine |
//! | [`mc`] | `raysearch-mc` | deterministic Monte-Carlo engine: random faults/targets, average-case ratios |
//! | [`bench`](mod@bench) | `raysearch-bench` | campaign-based experiments E1–E12, `tablegen` binary |
//! | [`service`] | `raysearch-service` | `raysearchd`: caching evaluation server, HTTP layer, load harness |
//!
//! # Quickstart
//!
//! ```
//! use raysearch::bounds::{LineInstance, Regime};
//! use raysearch::core::verdict::verify_tightness;
//!
//! // What is the best possible ratio for 3 robots, one of them faulty?
//! let instance = LineInstance::new(3, 1)?;
//! let Regime::Searchable { ratio } = instance.regime() else { unreachable!() };
//! assert!((ratio - 5.233069).abs() < 1e-6);
//!
//! // And does the whole theory check out mechanically?
//! let report = verify_tightness(2, 3, 1, 1e4, 0.01)?;
//! assert!(report.is_tight(1e-3));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use raysearch_bench as bench;
pub use raysearch_bounds as bounds;
// NB: aliasing a member to `core` shadows the std `core` crate in paths
// like `crate::core::...`; callers wanting the std one must use `::core`.
pub use raysearch_core as core;
pub use raysearch_cover as cover;
pub use raysearch_faults as faults;
pub use raysearch_mc as mc;
pub use raysearch_service as service;
pub use raysearch_sim as sim;
pub use raysearch_strategies as strategies;

/// The arXiv identifier of the reproduced paper.
pub const PAPER_ARXIV_ID: &str = "1707.05077";

/// The venue of the reproduced paper.
pub const PAPER_VENUE: &str = "PODC 2018";

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_are_wired() {
        // one symbol from each member, exercised through the umbrella
        let _ = crate::bounds::a_line(3, 1).unwrap();
        let _ = crate::sim::Time::ZERO;
        let _ = crate::faults::CrashAdversary::new(1);
        let _ = crate::strategies::DoublingCowPath::classic();
        let _ = crate::cover::settings::OrcSetting;
        let _ = crate::core::LineProblem::new(3, 1, 10.0).unwrap();
        let _ = crate::mc::McConfig::default();
        let _ = crate::bench::Table::new(vec!["k".into()]);
    }

    #[test]
    fn paper_constants() {
        assert_eq!(crate::PAPER_ARXIV_ID, "1707.05077");
        assert!(crate::PAPER_VENUE.contains("PODC"));
    }
}
