//! Vendored offline derive macros for the `serde` shim.
//!
//! With no crates.io access there is no `syn`/`quote`, so the derive
//! input is parsed directly from the compiler's `proc_macro` token
//! stream. The grammar covered is exactly what this workspace declares:
//!
//! * named-field structs (→ JSON objects),
//! * tuple structs (1 field → the inner value, matching serde's newtype
//!   semantics and `#[serde(transparent)]`; n fields → arrays),
//! * unit structs (→ `null`),
//! * enums with unit / tuple / struct variants (externally tagged, as
//!   in real serde),
//! * a simple generic parameter list (each type parameter gets a
//!   `serde::Serialize` bound).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Shape {
    UnitStruct,
    TupleStruct { arity: usize },
    NamedStruct { fields: Vec<String> },
    Enum { variants: Vec<Variant> },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Input {
    name: String,
    generics: Vec<String>,
    lifetimes: Vec<String>,
    shape: Shape,
}

fn is_punct(tt: &TokenTree, ch: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == ch)
}

fn ident_str(tt: &TokenTree) -> Option<String> {
    match tt {
        TokenTree::Ident(i) => Some(i.to_string()),
        _ => None,
    }
}

/// Skips outer attributes (`#[...]`, including doc comments).
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len()
        && is_punct(&tokens[i], '#')
        && matches!(&tokens[i + 1], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
    {
        i += 2;
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, `pub(in ...)`).
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if i < tokens.len() && ident_str(&tokens[i]).as_deref() == Some("pub") {
        i += 1;
        if i < tokens.len()
            && matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Parses a generic parameter list starting at the `<` in `tokens[i]`,
/// returning (type params, lifetimes, index just past the closing `>`).
fn parse_generics(tokens: &[TokenTree], mut i: usize) -> (Vec<String>, Vec<String>, usize) {
    let mut types = Vec::new();
    let mut lifetimes = Vec::new();
    debug_assert!(is_punct(&tokens[i], '<'));
    i += 1;
    let mut depth = 1usize;
    let mut at_param_start = true;
    while i < tokens.len() && depth > 0 {
        let tt = &tokens[i];
        if is_punct(tt, '<') {
            depth += 1;
            at_param_start = false;
        } else if is_punct(tt, '>') {
            depth -= 1;
        } else if depth == 1 && is_punct(tt, ',') {
            at_param_start = true;
        } else if depth == 1 && is_punct(tt, '\'') {
            if at_param_start {
                if let Some(name) = tokens.get(i + 1).and_then(ident_str) {
                    lifetimes.push(format!("'{name}"));
                }
            }
            i += 1; // consume the lifetime ident too
            at_param_start = false;
        } else if depth == 1 && at_param_start {
            if let Some(name) = ident_str(tt) {
                if name != "const" {
                    types.push(name);
                }
            }
            at_param_start = false;
        }
        i += 1;
    }
    (types, lifetimes, i)
}

/// Splits a delimited group body on top-level commas.
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut depth = 0isize;
    let mut prev_joint_dash = false;
    for tt in tokens {
        // `->` in a field type (fn pointers) contains a `>` that is not
        // a generic closer; joint `-` marks it.
        let arrow_tail = prev_joint_dash && is_punct(tt, '>');
        prev_joint_dash = matches!(
            tt,
            TokenTree::Punct(p)
                if p.as_char() == '-' && p.spacing() == proc_macro::Spacing::Joint
        );
        if is_punct(tt, '<') {
            depth += 1;
        } else if is_punct(tt, '>') && !arrow_tail {
            depth -= 1;
        }
        if depth == 0 && is_punct(tt, ',') {
            if !current.is_empty() {
                parts.push(std::mem::take(&mut current));
            }
        } else {
            current.push(tt.clone());
        }
    }
    if !current.is_empty() {
        parts.push(current);
    }
    parts
}

/// Extracts `name` from one named-field declaration (`attrs vis name: ty`).
fn field_name(part: &[TokenTree]) -> Option<String> {
    let mut i = skip_attrs(part, 0);
    i = skip_vis(part, i);
    ident_str(part.get(i)?)
}

fn parse_named_fields(group_tokens: &[TokenTree]) -> Vec<String> {
    split_top_level(group_tokens)
        .iter()
        .filter_map(|p| field_name(p))
        .collect()
}

fn parse_enum_variants(group_tokens: &[TokenTree]) -> Vec<Variant> {
    split_top_level(group_tokens)
        .iter()
        .filter_map(|part| {
            let i = skip_attrs(part, 0);
            let name = ident_str(part.get(i)?)?;
            let kind = match part.get(i + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    VariantKind::Tuple(split_top_level(&inner).len())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    VariantKind::Named(parse_named_fields(&inner))
                }
                _ => VariantKind::Unit, // unit, possibly with `= discriminant`
            };
            Some(Variant { name, kind })
        })
        .collect()
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);

    let kind = ident_str(tokens.get(i).ok_or("unexpected end of input")?)
        .ok_or("expected `struct` or `enum`")?;
    if kind != "struct" && kind != "enum" {
        return Err(format!("derive only supports struct/enum, got `{kind}`"));
    }
    i += 1;

    let name =
        ident_str(tokens.get(i).ok_or("expected a type name")?).ok_or("expected a type name")?;
    i += 1;

    let (generics, lifetimes) = if i < tokens.len() && is_punct(&tokens[i], '<') {
        let (g, l, next) = parse_generics(&tokens, i);
        i = next;
        (g, l)
    } else {
        (Vec::new(), Vec::new())
    };

    // skip a `where` clause if present: everything up to the body group
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Group(g)
                if g.delimiter() == Delimiter::Brace || g.delimiter() == Delimiter::Parenthesis =>
            {
                break
            }
            tt if is_punct(tt, ';') => break,
            _ => i += 1,
        }
    }

    let shape = if kind == "enum" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::Enum {
                    variants: parse_enum_variants(&inner),
                }
            }
            _ => return Err("expected enum body".into()),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::NamedStruct {
                    fields: parse_named_fields(&inner),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::TupleStruct {
                    arity: split_top_level(&inner).len(),
                }
            }
            _ => Shape::UnitStruct,
        }
    };

    Ok(Input {
        name,
        generics,
        lifetimes,
        shape,
    })
}

/// `impl<...>` generic header + type argument list for the impl.
fn generics_split(input: &Input, bound: Option<&str>) -> (String, String) {
    if input.generics.is_empty() && input.lifetimes.is_empty() {
        return (String::new(), String::new());
    }
    let mut params: Vec<String> = input.lifetimes.clone();
    for g in &input.generics {
        match bound {
            Some(b) => params.push(format!("{g}: {b}")),
            None => params.push(g.clone()),
        }
    }
    let mut args: Vec<String> = input.lifetimes.clone();
    args.extend(input.generics.iter().cloned());
    (
        format!("<{}>", params.join(", ")),
        format!("<{}>", args.join(", ")),
    )
}

fn serialize_body(input: &Input) -> String {
    let name = &input.name;
    match &input.shape {
        Shape::UnitStruct => "::serde::Value::Null".to_owned(),
        Shape::TupleStruct { arity: 1 } => {
            "::serde::Serialize::serialize_value(&self.0)".to_owned()
        }
        Shape::TupleStruct { arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::NamedStruct { fields } => {
            let mut body = String::from("{ let mut map = ::serde::Map::new();\n");
            for f in fields {
                body.push_str(&format!(
                    "map.insert(\"{f}\".to_owned(), ::serde::Serialize::serialize_value(&self.{f}));\n"
                ));
            }
            body.push_str("::serde::Value::Object(map) }");
            body
        }
        Shape::Enum { variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_owned()),\n"
                        ));
                    }
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let inner = if *arity == 1 {
                            "::serde::Serialize::serialize_value(__f0)".to_owned()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => {{ let mut tag = ::serde::Map::new(); tag.insert(\"{vn}\".to_owned(), {inner}); ::serde::Value::Object(tag) }},\n",
                            binds.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let mut inner = String::from("{ let mut map = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "map.insert(\"{f}\".to_owned(), ::serde::Serialize::serialize_value({f}));\n"
                            ));
                        }
                        inner.push_str("::serde::Value::Object(map) }");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{ let mut tag = ::serde::Map::new(); tag.insert(\"{vn}\".to_owned(), {inner}); ::serde::Value::Object(tag) }},\n",
                            fields.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    }
}

/// Derives the shim's `serde::Serialize` (conversion into `serde::Value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => {
            return format!("compile_error!(\"serde_derive shim: {e}\");")
                .parse()
                .expect("valid error tokens")
        }
    };
    let (impl_params, type_args) = generics_split(&parsed, Some("::serde::Serialize"));
    let name = &parsed.name;
    let body = serialize_body(&parsed);
    let out = format!(
        "#[automatically_derived]\n\
         impl{impl_params} ::serde::Serialize for {name}{type_args} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    );
    out.parse().expect("generated impl parses")
}

/// Derives the shim's marker `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => {
            return format!("compile_error!(\"serde_derive shim: {e}\");")
                .parse()
                .expect("valid error tokens")
        }
    };
    let (impl_params, type_args) = generics_split(&parsed, None);
    let name = &parsed.name;
    let out = format!(
        "#[automatically_derived]\n\
         impl{impl_params} ::serde::Deserialize for {name}{type_args} {{}}"
    );
    out.parse().expect("generated impl parses")
}
