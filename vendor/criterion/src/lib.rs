//! Vendored offline shim for the subset of `criterion` this workspace
//! uses.
//!
//! The build environment has no crates.io access, so the real `criterion`
//! cannot be fetched. This shim keeps every bench target compiling and
//! *running* (`cargo bench`) with the same source: it measures a simple
//! adaptive-iteration mean wall-clock time per benchmark and prints one
//! line per benchmark. There is no statistical analysis, warm-up
//! schedule, or HTML report.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(200);
/// Hard cap on iterations per benchmark.
const MAX_ITERS: u64 = 1_000_000;

/// Identifier for a benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
#[derive(Debug, Default)]
pub struct Bencher {
    last_ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, adaptively choosing an iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // one calibration call, also serving as warm-up
        let t0 = Instant::now();
        black_box(routine());
        let first = t0.elapsed().max(Duration::from_nanos(1));

        let iters = (TARGET.as_nanos() / first.as_nanos()).clamp(1, u128::from(MAX_ITERS)) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let total = t1.elapsed();
        self.last_ns_per_iter = total.as_nanos() as f64 / iters as f64;
    }
}

fn report(name: &str, bencher: &Bencher) {
    let ns = bencher.last_ns_per_iter;
    if ns >= 1e9 {
        println!("bench: {name:<48} {:>12.3} s/iter", ns / 1e9);
    } else if ns >= 1e6 {
        println!("bench: {name:<48} {:>12.3} ms/iter", ns / 1e6);
    } else if ns >= 1e3 {
        println!("bench: {name:<48} {:>12.3} us/iter", ns / 1e3);
    } else {
        println!("bench: {name:<48} {:>12.1} ns/iter", ns);
    }
}

/// The benchmark manager, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        report(name, &b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_owned(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Runs a benchmark parameterized by borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Ends the group. (No-op in the shim; kept for source compatibility.)
    pub fn finish(self) {}
}

/// Declares a function running a list of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let data = vec![1u32, 2, 3];
        group.bench_with_input(BenchmarkId::from_parameter(3), &data, |b, d| {
            b.iter(|| d.iter().sum::<u32>())
        });
        group.finish();
    }
}
