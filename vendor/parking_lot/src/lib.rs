//! Vendored offline shim for the subset of `parking_lot` this workspace
//! uses, backed by `std::sync`.
//!
//! The build environment has no access to a crates.io mirror, so the real
//! `parking_lot` cannot be fetched. This shim keeps the dependency edge
//! (and the call sites) intact: `Mutex::new`, the panic-free `lock()`
//! returning a guard directly (no `Result`), and `into_inner()`.

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// A mutual-exclusion primitive with `parking_lot`'s infallible `lock`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available. Unlike
    /// `std::sync::Mutex`, poisoning is ignored (matching `parking_lot`).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s infallible API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
        assert_eq!(l.into_inner(), "ab");
    }
}
