//! Vendored offline shim for the subset of `serde_json` this workspace
//! uses: `Value`/`Map` (re-exported from the `serde` shim, which owns the
//! data model) and the `to_value`/`to_string` entry points.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::{Map, Value};

/// Serialization error. The shim's data model is infallible, so this is
/// never actually produced; it exists to keep `Result`-based call sites
/// source-compatible.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Converts any `Serialize` type into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.serialize_value())
}

/// Renders any `Serialize` type as compact JSON text.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.serialize_value().to_json_string())
}

/// Renders any `Serialize` type as JSON text (the shim does not indent;
/// provided for source compatibility).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    to_string(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_value_and_string() {
        let v = to_value(vec![1u32, 2, 3]).unwrap();
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&"hi").unwrap(), "\"hi\"");
    }

    #[test]
    fn object_tagging_like_tablegen() {
        let mut m = Map::new();
        m.insert("a".to_owned(), Value::Int(1));
        let mut v = Value::Object(m);
        if let Value::Object(map) = &mut v {
            map.insert("experiment".to_owned(), Value::String("e1".to_owned()));
        }
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"experiment":"e1"}"#);
    }
}
