//! Vendored offline shim for the subset of `serde_json` this workspace
//! uses: `Value`/`Map` (re-exported from the `serde` shim, which owns the
//! data model), the `to_value`/`to_string` entry points, and a
//! [`from_str`] parser so reports can be round-tripped and validated
//! without network access.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::{Map, Value};

/// Serialization/parse error. Serialization through the shim's data
/// model is infallible; parsing reports the byte offset and cause.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Converts any `Serialize` type into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.serialize_value())
}

/// Renders any `Serialize` type as compact JSON text.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.serialize_value().to_json_string())
}

/// Renders any `Serialize` type as JSON text (the shim does not indent;
/// provided for source compatibility).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    to_string(value)
}

/// Parses JSON text into a [`Value`] tree.
///
/// Divergence from the real `serde_json`: the shim's `Deserialize` is a
/// marker trait with no data model, so `from_str` is not generic — it
/// always produces a [`Value`]. Call sites reading into `Value` (the
/// only deserialization this workspace does) are source-compatible.
///
/// # Errors
///
/// Returns [`Error`] with the byte offset on malformed input, including
/// trailing non-whitespace after the document.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters after JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Maximum container nesting `from_str` accepts, matching the real
/// `serde_json`'s default recursion limit; deeper input errors instead
/// of overflowing the stack.
const MAX_DEPTH: usize = 128;

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("recursion limit exceeded"));
        }
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected literal {word:?}")))
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair: require \uXXXX low half
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(ch);
                            continue; // parse_hex4 already advanced
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // multi-byte UTF-8 is copied through by char
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("peeked non-empty");
                    if (ch as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .filter(|b| b.iter().all(u8::is_ascii_hexdigit))
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn eat_digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        // strict JSON grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        let int_digits = self.eat_digits();
        if int_digits == 0 {
            return Err(self.err("expected digit in number"));
        }
        if int_digits > 1 && self.bytes[int_start] == b'0' {
            return Err(Error(format!("leading zero in number at byte {int_start}")));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if self.eat_digits() == 0 {
                return Err(self.err("expected digit after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.eat_digits() == 0 {
                return Err(self.err("expected digit in exponent"));
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number {text:?} at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_value_and_string() {
        let v = to_value(vec![1u32, 2, 3]).unwrap();
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&"hi").unwrap(), "\"hi\"");
    }

    #[test]
    fn object_tagging_like_tablegen() {
        let mut m = Map::new();
        m.insert("a".to_owned(), Value::Int(1));
        let mut v = Value::Object(m);
        if let Value::Object(map) = &mut v {
            map.insert("experiment".to_owned(), Value::String("e1".to_owned()));
        }
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"experiment":"e1"}"#);
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str("false").unwrap(), Value::Bool(false));
        assert_eq!(from_str("42").unwrap(), Value::Int(42));
        assert_eq!(from_str("-7").unwrap(), Value::Int(-7));
        assert_eq!(
            from_str("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
        assert_eq!(from_str("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(from_str("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(from_str("-1.25e-2").unwrap(), Value::Float(-0.0125));
        assert_eq!(from_str(r#""hi""#).unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parse_containers_and_escapes() {
        let v = from_str(r#"{"rows":[{"k":3,"x":2.5,"s":"a\"b\né"}],"n":null}"#).unwrap();
        let rows = v.get("rows").and_then(Value::as_array).unwrap();
        assert_eq!(rows[0].get("k").and_then(Value::as_u64), Some(3));
        assert_eq!(rows[0].get("x").and_then(Value::as_f64), Some(2.5));
        assert_eq!(rows[0].get("s").and_then(Value::as_str), Some("a\"b\né"));
        assert!(v.get("n").unwrap().is_null());
        // surrogate pair
        assert_eq!(from_str(r#""😀""#).unwrap(), Value::String("😀".into()));
    }

    #[test]
    fn round_trips_serialized_output() {
        let mut m = Map::new();
        m.insert("k".into(), Value::Int(3));
        m.insert("ratio".into(), Value::Float(5.233069471915199));
        m.insert("note".into(), Value::Null);
        m.insert(
            "tags".into(),
            Value::Array(vec![Value::String("e1".into())]),
        );
        let original = Value::Object(m);
        let text = to_string(&original).unwrap();
        assert_eq!(from_str(&text).unwrap(), original);
    }

    #[test]
    fn parse_errors_carry_position() {
        for bad in [
            "",
            "{",
            "[1,]",
            r#"{"a":}"#,
            "tru",
            "1 2",
            r#""unterminated"#,
        ] {
            let err = from_str(bad).expect_err(bad);
            assert!(err.to_string().contains("byte"), "{bad}: {err}");
        }
    }

    #[test]
    fn rejects_lenient_number_and_escape_forms() {
        // strict JSON: these are all invalid even though Rust's own
        // f64/u32 parsers would accept the embedded fragments
        for bad in [
            "1.",
            "1.e3",
            ".5",
            "-",
            "01",
            "-01",
            "1e",
            "1e+",
            "2.5.3",
            r#""\u+041""#,
            r#""\u12g4""#,
        ] {
            assert!(from_str(bad).is_err(), "accepted invalid JSON {bad:?}");
        }
        // deep nesting errors instead of blowing the stack
        let deep = "[".repeat(10_000);
        let err = from_str(&deep).expect_err("unbounded nesting");
        assert!(err.to_string().contains("recursion"), "{err}");
        // ...while the strict forms stay accepted
        assert_eq!(from_str("0").unwrap(), Value::Int(0));
        assert_eq!(from_str("-0.5e+2").unwrap(), Value::Float(-50.0));
        assert_eq!(from_str(r#""A""#).unwrap(), Value::String("A".into()));
    }
}
