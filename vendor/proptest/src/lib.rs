//! Vendored offline shim for the subset of `proptest` this workspace
//! uses.
//!
//! The build environment has no crates.io access, so the real `proptest`
//! cannot be fetched. This shim keeps the *call sites* identical — the
//! `proptest!` macro with `#![proptest_config(...)]`, range / tuple /
//! `prop::collection::vec` / `prop::bool::ANY` strategies, `prop_map`,
//! and `prop_assert!`/`prop_assert_eq!`/`prop_assume!` — while replacing
//! the shrinking machinery with plain deterministic random sampling:
//! each test runs `cases` seeded samples and reports the first failing
//! input verbatim (no shrinking). Sampling is seeded per test name, so
//! failures are reproducible run to run.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Config and error types, mirroring `proptest::test_runner`.

    /// How a single generated test case failed.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!`; try another sample.
        Reject,
        /// The property failed with the given message.
        Fail(String),
    }

    /// Test-runner configuration. Only `cases` is honoured by the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases to run.
        pub cases: u32,
        /// Maximum total rejected samples (`prop_assume!` failures)
        /// tolerated before the test aborts.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                max_global_rejects: 1024,
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig::with_cases(256)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::rngs::StdRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a
    /// strategy is just a seeded sampler.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn new_value(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn new_value(&self, rng: &mut StdRng) -> S::Value {
            (**self).new_value(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, len_range)`: vectors of `element` samples whose
    /// length is uniform in `len_range`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies, mirroring `proptest::bool`.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy yielding fair booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn new_value(&self, rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

/// Seeds the per-test RNG from the test's fully qualified name (FNV-1a),
/// so every run of a given test draws the same samples.
pub fn rng_for_test(name: &str) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    rand::rngs::StdRng::seed_from_u64(h)
}

pub mod prelude {
    //! Glob-import surface, mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` paths (`prop::collection::vec`, `prop::bool::ANY`),
    /// as re-exported by real proptest's prelude.
    pub use crate as prop;
}

/// Fails the current test case with a formatted message unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        let msg = format!($($fmt)*);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`): {}",
            stringify!($left), stringify!($right), l, r, msg
        );
    }};
}

/// Fails the current test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current sample (it is not counted towards `cases`) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// The `proptest!` block: declares `#[test]` functions whose arguments
/// are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            @cfg($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($parm:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                $(let $parm = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected < config.max_global_rejects,
                            "proptest shim: too many prop_assume! rejections in {} \
                             ({} rejects for {} accepted cases)",
                            stringify!($name), rejected, accepted
                        );
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case failed: {}", msg);
                    }
                }
            }
        }
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 1u32..10, y in -2.0f64..2.0) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in prop::collection::vec((0usize..3, 0.5f64..1.5), 1..6),
            b in prop::bool::ANY,
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            for (i, f) in &v {
                prop_assert!(*i < 3);
                prop_assert!((0.5..1.5).contains(f));
            }
            let as_int = u8::from(b);
            prop_assert!(as_int == 0 || as_int == 1);
        }

        #[test]
        fn prop_map_and_assume(mut n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            n += 2;
            let doubled = crate::strategy::Strategy::new_value(
                &(1u32..5).prop_map(|k| k * 2),
                &mut crate::rng_for_test("inner"),
            );
            prop_assert!(doubled % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_sampling() {
        use crate::strategy::Strategy;
        let s = 0u64..1_000_000;
        let a: Vec<u64> = {
            let mut rng = crate::rng_for_test("t");
            (0..10).map(|_| s.new_value(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = crate::rng_for_test("t");
            (0..10).map(|_| s.new_value(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
