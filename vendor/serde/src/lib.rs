//! Vendored offline shim for the subset of `serde` this workspace uses.
//!
//! The build environment has no crates.io access, so the real `serde`
//! cannot be fetched. The workspace's needs are narrow: `#[derive(
//! serde::Serialize, serde::Deserialize)]` on plain structs and enums,
//! `#[serde(transparent)]` newtypes, and `serde_json::{to_value,
//! to_string}` over those types. This shim collapses the serializer
//! abstraction to a single concrete [`Value`] tree (the only data model
//! the workspace ever serializes into) while keeping every call site and
//! derive attribute source-compatible.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree: the single serialization data model of the
/// shim. Re-exported by the vendored `serde_json` as its `Value`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX`).
    UInt(u64),
    /// Floating-point number. Non-finite values render as `null`.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Map),
}

/// An insertion-ordered string-keyed map, mirroring `serde_json::Map`
/// with `preserve_order` semantics (field order in JSON output matches
/// declaration order).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts `value` under `key`, replacing and returning any previous
    /// value for that key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Returns the value under `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl Value {
    /// Whether this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            Value::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// The value as an `f64`; integers convert (like `serde_json`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The string slice, if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element slice, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The map, if this is an `Object`.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Index into an `Object` by key (`None` for other variants or a
    /// missing key), mirroring `serde_json::Value::get`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|map| map.get(key))
    }

    /// Renders the value as compact JSON text.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::UInt(u) => out.push_str(&u.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    if f.fract() == 0.0 && f.abs() < 1e15 {
                        // match serde_json: whole floats keep a ".0"
                        out.push_str(&format!("{f:.1}"));
                    } else {
                        out.push_str(&format!("{f}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => write_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json_string())
    }
}

/// Types convertible into the shim's [`Value`] data model. Stands in for
/// `serde::Serialize`; implemented by the derive macro and for the
/// primitive/container types the workspace serializes.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn serialize_value(&self) -> Value;
}

/// Marker stand-in for `serde::Deserialize`. The workspace never
/// deserializes, so the derive emits an empty impl.
pub trait Deserialize {}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Int(i64::from(*self))
            }
        }
    )*};
}

impl_serialize_signed!(i8, i16, i32, i64);

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let v = u64::from(*self);
                match i64::try_from(v) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(v),
                }
            }
        }
    )*};
}

impl_serialize_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn serialize_value(&self) -> Value {
        (*self as u64).serialize_value()
    }
}

impl Serialize for isize {
    fn serialize_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![self.0.serialize_value(), self.1.serialize_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![
            self.0.serialize_value(),
            self.1.serialize_value(),
            self.2.serialize_value(),
        ])
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            map.insert(k.to_string(), v.serialize_value());
        }
        Value::Object(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_insert_replaces() {
        let mut m = Map::new();
        assert!(m.insert("a".into(), Value::Int(1)).is_none());
        assert_eq!(m.insert("a".into(), Value::Int(2)), Some(Value::Int(1)));
        assert_eq!(m.get("a"), Some(&Value::Int(2)));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn json_rendering() {
        let mut m = Map::new();
        m.insert("k".into(), Value::Int(3));
        m.insert("x".into(), Value::Float(2.5));
        m.insert("s".into(), Value::String("a\"b".into()));
        let v = Value::Object(m);
        assert_eq!(v.to_json_string(), r#"{"k":3,"x":2.5,"s":"a\"b"}"#);
    }

    #[test]
    fn whole_floats_keep_decimal() {
        assert_eq!(Value::Float(9.0).to_json_string(), "9.0");
        assert_eq!(Value::Float(f64::NAN).to_json_string(), "null");
    }

    #[test]
    fn accessors() {
        let mut m = Map::new();
        m.insert("n".into(), Value::Int(3));
        m.insert("x".into(), Value::Float(2.5));
        m.insert("s".into(), Value::String("hi".into()));
        m.insert("a".into(), Value::Array(vec![Value::Bool(true)]));
        let v = Value::Object(m);
        assert_eq!(v.get("n").and_then(Value::as_i64), Some(3));
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("n").and_then(Value::as_f64), Some(3.0));
        assert_eq!(v.get("x").and_then(Value::as_f64), Some(2.5));
        assert_eq!(v.get("x").and_then(Value::as_i64), None);
        assert_eq!(v.get("s").and_then(Value::as_str), Some("hi"));
        assert_eq!(
            v.get("a").and_then(Value::as_array).map(<[Value]>::len),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
        assert!(Value::Null.is_null());
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(-1).as_u64(), None);
        assert!(v.as_object().is_some());
        assert!(Value::Int(1).get("k").is_none());
    }

    #[test]
    fn primitive_impls() {
        assert_eq!(3u32.serialize_value(), Value::Int(3));
        assert_eq!(u64::MAX.serialize_value(), Value::UInt(u64::MAX));
        assert_eq!(Some(1i32).serialize_value(), Value::Int(1));
        assert_eq!(None::<i32>.serialize_value(), Value::Null);
        assert_eq!(
            vec![1u8, 2].serialize_value(),
            Value::Array(vec![Value::Int(1), Value::Int(2)])
        );
    }
}
