//! Vendored offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no crates.io access, so the real `rand`
//! cannot be fetched. The workspace only ever draws *seeded* randomness
//! (`StdRng::seed_from_u64` + `Rng::gen_range`), so a small, deterministic
//! xoshiro256** generator behind the same trait names is a faithful
//! stand-in: every caller is reproducible by construction and no entropy
//! source is required.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of 64-bit random words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// Supports the same call shapes as rand 0.8: half-open and inclusive
    /// ranges over the integer types and `f64`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Samples a value of type `T` via [`Standard`]-like distributions
    /// (`f64` in `[0, 1)`, full-width integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable without an explicit range (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly, mirroring `rand::distributions::
/// uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_f64<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo <= hi, "empty f64 range");
    let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    lo + (hi - lo) * u
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        uniform_f64(rng, self.start, self.end)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        uniform_f64(rng, lo, hi)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $u as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $u as $t);
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $u as $t)
            }
        }
    )*};
}

impl_signed_range!(i32 as u32, i64 as u64, isize as usize);

/// Commonly used generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**,
    /// seeded through SplitMix64 exactly as the reference implementation
    /// recommends.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(-2.5f64..=4.5);
            assert!((-2.5..=4.5).contains(&y));
            let z = rng.gen_range(5u32..=5);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..u64::MAX) == b.gen_range(0u64..u64::MAX))
            .count();
        assert!(same < 4);
    }
}
