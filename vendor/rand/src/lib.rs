//! Vendored offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no crates.io access, so the real `rand`
//! cannot be fetched. The workspace only ever draws *seeded* randomness
//! (`StdRng::seed_from_u64` + `Rng::gen_range`), so a small, deterministic
//! xoshiro256** generator behind the same trait names is a faithful
//! stand-in: every caller is reproducible by construction and no entropy
//! source is required.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of 64-bit random words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// Supports the same call shapes as rand 0.8: half-open and inclusive
    /// ranges over the integer types and `f64`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Samples a value of type `T` via [`Standard`]-like distributions
    /// (`f64` in `[0, 1)`, full-width integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable without an explicit range (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly, mirroring `rand::distributions::
/// uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_f64<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo <= hi, "empty f64 range");
    let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    lo + (hi - lo) * u
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        uniform_f64(rng, self.start, self.end)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        uniform_f64(rng, lo, hi)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $u as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $u as $t);
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $u as $t)
            }
        }
    )*};
}

impl_signed_range!(i32 as u32, i64 as u64, isize as usize);

/// Commonly used generator types, mirroring `rand::rngs` (plus the
/// counter-based [`SplitMix64`](rngs::SplitMix64) the Monte-Carlo
/// engine keys per sample).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**,
    /// seeded through SplitMix64 exactly as the reference implementation
    /// recommends.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Sebastiano Vigna's SplitMix64: a tiny, full-period generator whose
    /// entire future stream is a pure function of one 64-bit state word.
    ///
    /// Because construction is O(1) and stateless, it supports the
    /// *counter-based* discipline Monte-Carlo engines need: build a fresh
    /// generator per sample with [`SplitMix64::keyed`]`(seed, index)` and
    /// the draw stream of sample `index` never depends on how samples are
    /// sharded across threads or batches.
    #[derive(Debug, Clone)]
    pub struct SplitMix64 {
        state: u64,
    }

    impl SplitMix64 {
        /// A generator whose stream starts from the raw `state` word
        /// (the reference implementation's seeding).
        pub fn new(state: u64) -> Self {
            SplitMix64 { state }
        }

        /// The counter-based constructor: a generator for sub-stream
        /// `index` of the master `seed`.
        ///
        /// The initial state is the SplitMix64 finalizer applied to
        /// `seed XOR (index + 1) · φ` (the odd golden-ratio constant), so
        /// distinct `(seed, index)` pairs land on well-separated points
        /// of the state space and `keyed(s, i)` never aliases `new(s)`.
        pub fn keyed(seed: u64, index: u64) -> Self {
            let mut mix = seed ^ index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            // one finalizer round decorrelates neighbouring indices
            mix = splitmix64(&mut mix);
            SplitMix64 { state: mix }
        }
    }

    impl SeedableRng for SplitMix64 {
        fn seed_from_u64(state: u64) -> Self {
            SplitMix64::new(state)
        }
    }

    impl RngCore for SplitMix64 {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SplitMix64, StdRng};
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn splitmix64_matches_the_reference_stream() {
        // Vigna's published test vector for state 0.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
        // seed_from_u64 is the raw-state constructor
        let mut seeded = SplitMix64::seed_from_u64(0x9E37_79B9_7F4A_7C15);
        assert_eq!(seeded.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn splitmix64_keyed_streams_are_pinned() {
        // The counter-based constructor is part of the determinism
        // contract of the Monte-Carlo engine: these exact words must
        // never change.
        let expect = [
            (
                42u64,
                0u64,
                [0xFC99_1BCA_1A1A_A1AEu64, 0x4F04_82A7_2B57_EE7D],
            ),
            (42, 1, [0x7E8F_D405_45BC_DD70, 0x8BAA_2CA0_071F_01EA]),
            (42, 2, [0xCD11_0C61_E9AC_6A90, 0xBB3D_927D_4935_BA12]),
            (7, 0, [0x9816_B543_1C11_5F88, 0x19E9_1F84_37A8_0A62]),
            (43, 0, [0x3A56_4F44_D0F9_45B6, 0xC5F8_100C_7002_8DD9]),
        ];
        for (seed, index, words) in expect {
            let mut rng = SplitMix64::keyed(seed, index);
            for (n, want) in words.into_iter().enumerate() {
                assert_eq!(
                    rng.next_u64(),
                    want,
                    "keyed({seed}, {index}) word {n} drifted"
                );
            }
        }
    }

    #[test]
    fn splitmix64_keyed_is_independent_of_construction_order() {
        let direct: Vec<u64> = (0..16)
            .map(|i| SplitMix64::keyed(99, i).next_u64())
            .collect();
        let reversed: Vec<u64> = (0..16)
            .rev()
            .map(|i| SplitMix64::keyed(99, i).next_u64())
            .collect();
        let back: Vec<u64> = reversed.into_iter().rev().collect();
        assert_eq!(direct, back);
        // neighbouring sub-streams differ
        assert_ne!(direct[0], direct[1]);
    }

    #[test]
    fn splitmix64_samples_ranges_through_the_rng_trait() {
        let mut rng = SplitMix64::keyed(5, 5);
        for _ in 0..256 {
            let x = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&x));
            let n = rng.gen_range(1u32..=6);
            assert!((1..=6).contains(&n));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(-2.5f64..=4.5);
            assert!((-2.5..=4.5).contains(&y));
            let z = rng.gen_range(5u32..=5);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..u64::MAX) == b.gen_range(0u64..u64::MAX))
            .count();
        assert!(same < 4);
    }
}
