//! Property-based falsification of the lower bounds and invariants of the
//! substrates, using proptest across crates.

use proptest::prelude::*;
use raysearch::bounds::{c_orc, lambda_big, lambda_to_mu, mu_threshold};
use raysearch::cover::settings::{merge_fleet_intervals, OrcSetting, PmSetting};
use raysearch::cover::standardize::{canonicalize, pm_covers_at_least};
use raysearch::cover::CoverageProfile;
use raysearch::sim::{Direction, LineItinerary, LineTrajectory};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Λ is increasing and dominated by the trivial 2η+... sanity band:
    /// 2η + 1 <= Λ(η) (AM-GM-ish) and Λ(η) <= 2·e·η^η for η in (1, 4].
    #[test]
    fn lambda_band(eta in 1.0001f64..4.0) {
        let v = lambda_big(eta).unwrap();
        prop_assert!(v >= 2.0 * eta + 1.0 - 1e-9);
        let crude = 2.0 * eta.powf(eta) * std::f64::consts::E + 1.0;
        prop_assert!(v <= crude);
    }

    /// Scale invariance of the threshold under integer scaling.
    #[test]
    fn mu_threshold_scales(k in 1u32..20, extra in 1u32..20, c in 1u32..5) {
        let q = k + extra;
        let a = mu_threshold(k, q).unwrap();
        let b = mu_threshold(c * k, c * q).unwrap();
        prop_assert!((a - b).abs() < 1e-9 * a.max(1.0));
    }

    /// C(k, q) is achieved by the formula from both printed forms.
    #[test]
    fn c_orc_forms_agree(k in 1u32..12, extra in 1u32..12) {
        let q = k + extra;
        let v = c_orc(k, q).unwrap();
        let eta = f64::from(q) / f64::from(k);
        prop_assert!((v - lambda_big(eta).unwrap()).abs() < 1e-9);
    }

    /// Trajectory compilation round-trips: position at a visit time is the
    /// visited coordinate.
    #[test]
    fn visit_position_consistency(
        turns in prop::collection::vec(0.1f64..50.0, 1..12),
        x_frac in 0.01f64..0.99,
    ) {
        let it = LineItinerary::new(Direction::Positive, turns.clone()).unwrap();
        let traj = LineTrajectory::compile(&it);
        let reach = traj.max_reach(Direction::Positive);
        prop_assume!(reach > 0.2);
        let x = reach * x_frac;
        if let Some(t) = traj.first_visit(x) {
            let pos = traj.position_at(t);
            prop_assert!((pos.coordinate() - x).abs() < 1e-9);
        }
        for v in traj.visits_coord(x) {
            let pos = traj.position_at(v.time);
            prop_assert!((pos.coordinate() - x).abs() < 1e-9);
        }
    }

    /// Canonicalization never loses λ-coverage (with a settled tail).
    #[test]
    fn canonicalize_preserves_coverage(
        mut turns in prop::collection::vec(0.2f64..30.0, 2..10),
        lambda in 3.0f64..15.0,
    ) {
        // append a long settled tail, modelling the infinite strategy
        let max = turns.iter().cloned().fold(0.0f64, f64::max);
        turns.push(max * 8.0);
        turns.push(max * 16.0);
        turns.push(max * 32.0);
        let cleaned = canonicalize(&turns).unwrap();
        let probes: Vec<f64> = (1..40).map(|i| max * f64::from(i) / 40.0).collect();
        prop_assert!(
            pm_covers_at_least(&turns, &cleaned, lambda, &probes).unwrap(),
            "coverage lost: {turns:?} -> {cleaned:?}"
        );
    }

    /// The ±-cover interval formula matches trajectory ground truth on
    /// geometric strategies of random base.
    #[test]
    fn pm_formula_matches_ground_truth(base in 1.2f64..3.0, lambda in 4.0f64..12.0) {
        let mu = lambda_to_mu(lambda).unwrap();
        let turns: Vec<f64> = (0..14).map(|i| base.powi(i)).collect();
        let extended: Vec<f64> = (0..16).map(|i| base.powi(i)).collect();
        let ivs = PmSetting::covered_intervals(&turns, mu).unwrap();
        let mut x = 0.51;
        while x < base.powi(10) {
            let by_formula = ivs.iter().any(|iv| iv.contains(x));
            let truth = PmSetting::is_lambda_covered(&extended, x, lambda).unwrap();
            prop_assert_eq!(by_formula, truth, "x = {}", x);
            x *= 1.37;
        }
    }

    /// No random geometric fleet ever q-fold ORC-covers below C(k, q):
    /// the falsification side of Theorem 6, hammered with random bases.
    #[test]
    fn random_fleets_fail_below_bound(seed in 0u64..500) {
        use raysearch::strategies::{RandomGeometric, RayStrategy};
        let (m, k, f) = (3u32, 2u32, 0u32);
        let q = (m * (f + 1)) as usize;
        let lambda = 0.97 * c_orc(k, m * (f + 1)).unwrap();
        let mu = lambda_to_mu(lambda).unwrap();
        let strategy = RandomGeometric::new(m, k, f, seed, (1.05, 4.0)).unwrap();
        let fleet = strategy.fleet_tours(2e4).unwrap();
        let per_robot: Vec<_> = fleet
            .iter()
            .map(|t| OrcSetting::covered_intervals(&OrcSetting::turns_from_tour(t), mu).unwrap())
            .collect();
        let merged = merge_fleet_intervals(per_robot);
        let profile = CoverageProfile::build(&merged, 1.0, 5e3).unwrap();
        prop_assert!(
            profile.first_undercovered(q).is_some(),
            "seed {} beat the bound", seed
        );
    }
}
