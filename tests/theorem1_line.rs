//! Integration tests for Theorem 1: the line with crash faults.
//!
//! Spans `bounds` (closed forms), `strategies` (the optimal construction),
//! `core` (exact evaluation), `faults` (adversary semantics) and `cover`
//! (lower-bound falsification).

use raysearch::bounds::{a_line, lambda_to_mu, LineInstance, Regime};
use raysearch::core::{LineEvaluator, RayEvaluator};
use raysearch::cover::settings::{merge_fleet_intervals, OrcSetting};
use raysearch::cover::CoverageProfile;
use raysearch::strategies::{CyclicExponential, LineStrategy, RayStrategy};

/// Every searchable (k, f) with k <= 8: the optimal strategy measures at
/// A(k, f) on the exact evaluator (within finite-horizon slack) and never
/// above it.
#[test]
fn theorem1_upper_bound_measured_for_all_small_instances() {
    for k in 1u32..=8 {
        for f in 0..k {
            let instance = LineInstance::new(k, f).unwrap();
            let Regime::Searchable { ratio: theory } = instance.regime() else {
                continue;
            };
            let strategy = CyclicExponential::optimal(2, k, f)
                .unwrap()
                .to_line()
                .unwrap();
            let fleet = strategy.fleet_itineraries(1e6).unwrap();
            let report = LineEvaluator::new(f, 1.0, 1e4)
                .unwrap()
                .evaluate(&fleet)
                .unwrap();
            assert!(report.is_covered(), "(k={k}, f={f}) uncovered");
            assert!(
                report.ratio <= theory + 1e-9,
                "(k={k}, f={f}): measured {} above theory {theory}",
                report.ratio
            );
            assert!(
                (report.ratio - theory).abs() < 5e-3 * theory,
                "(k={k}, f={f}): measured {} far from theory {theory}",
                report.ratio
            );
        }
    }
}

/// The lower bound, falsification form: for every searchable (k, f) the
/// optimal strategy's induced 2(f+1)-fold ORC covering fails at
/// lambda = 0.98·A(k,f).
#[test]
fn theorem1_lower_bound_falsification_for_all_small_instances() {
    for k in 1u32..=8 {
        for f in 0..k {
            let instance = LineInstance::new(k, f).unwrap();
            let Regime::Searchable { ratio: theory } = instance.regime() else {
                continue;
            };
            let strategy = CyclicExponential::optimal(2, k, f).unwrap();
            let fleet = strategy.fleet_tours(4e4).unwrap();
            let mu = lambda_to_mu(0.98 * theory).unwrap();
            let per_robot: Vec<_> = fleet
                .iter()
                .map(|t| {
                    OrcSetting::covered_intervals(&OrcSetting::turns_from_tour(t), mu).unwrap()
                })
                .collect();
            let merged = merge_fleet_intervals(per_robot);
            let profile = CoverageProfile::build(&merged, 1.0, 1e4).unwrap();
            assert!(
                profile.first_undercovered(instance.q() as usize).is_some(),
                "(k={k}, f={f}): covering did not fail below the bound"
            );
        }
    }
}

/// The two printed forms of Eq. (1) agree, and the regime boundaries are
/// where the paper says: s <= 0 trivial, k = f impossible.
#[test]
fn theorem1_regime_boundaries() {
    // ratio-1 witness: two-way saturation measured at exactly 1
    use raysearch::strategies::baselines::TwoWaySaturation;
    let s = TwoWaySaturation::new(4, 1).unwrap();
    let fleet = s.fleet_itineraries(1e3).unwrap();
    let r = LineEvaluator::new(1, 1.0, 500.0)
        .unwrap()
        .evaluate(&fleet)
        .unwrap();
    assert!((r.ratio - 1.0).abs() < 1e-12);

    // impossibility: with k = f every fleet fails — no strategy can get
    // f+1 = k+1 distinct visits out of k robots; encode via the evaluator
    let strategy = CyclicExponential::optimal(2, 3, 1)
        .unwrap()
        .to_line()
        .unwrap();
    let fleet = strategy.fleet_itineraries(1e3).unwrap();
    // f = 3 with k = 3 robots: evaluator refuses (needs > f robots)
    assert!(LineEvaluator::new(3, 1.0, 100.0)
        .unwrap()
        .evaluate(&fleet)
        .is_err());
}

/// The line problem and its two-ray formulation agree end to end: the
/// same strategy evaluated as a line fleet and as a two-ray tour fleet
/// yields the same ratio.
#[test]
fn line_and_two_ray_views_agree() {
    for (k, f) in [(1u32, 0u32), (3, 1), (5, 2)] {
        let strategy = CyclicExponential::optimal(2, k, f).unwrap();
        let tours = strategy.fleet_tours(1e5).unwrap();
        let line = strategy.to_line().unwrap();
        let itineraries = line.fleet_itineraries(1e5).unwrap();

        let ray_ratio = RayEvaluator::new(2, f, 1.0, 1e4)
            .unwrap()
            .evaluate(&tours)
            .unwrap()
            .ratio;
        let line_ratio = LineEvaluator::new(f, 1.0, 1e4)
            .unwrap()
            .evaluate(&itineraries)
            .unwrap()
            .ratio;
        assert!(
            (ray_ratio - line_ratio).abs() < 1e-9,
            "(k={k}, f={f}): ray {ray_ratio} vs line {line_ratio}"
        );
    }
}

/// B(3,1): the paper's quoted improvement, end to end through the public
/// API.
#[test]
fn byzantine_improvement_value() {
    let v = a_line(3, 1).unwrap();
    assert!((v - (8.0 / 3.0 * 4f64.powf(1.0 / 3.0) + 1.0)).abs() < 1e-12);
    assert!(v > 5.23 && v < 5.24);
}
