//! Golden tests for the campaign engine: E1's JSON rows pinned against
//! the closed forms `A(k, f)` (the same pins as `closed_form_smoke.rs`),
//! plus deterministic ordering across worker-thread counts — the
//! end-to-end guarantee the `tablegen --json` consumers rely on.

use raysearch::bench::experiments::{self, e1_theorem1, Config};
use raysearch::bounds::a_line;
use serde_json::Value;

const TOL: f64 = 1e-9;

/// The pinned decimals of `closed_form_smoke.rs`, re-checked here
/// through the full campaign → report → JSON → parse pipeline.
const PINNED: &[((u32, u32), f64)] = &[
    ((3, 1), 5.233_069_471_915_199),
    ((4, 2), 6.196_152_422_706_631),
    ((5, 2), 4.434_325_794_652_613),
    ((5, 3), 6.764_096_164_354_617),
    ((6, 4), 7.140_052_497_733_978),
];

#[test]
fn e1_json_rows_match_closed_forms() {
    let cfg = Config {
        max_k: 6,
        threads: Some(2),
        ..Config::default()
    };
    let reports = experiments::run_experiment("e1", &cfg).expect("e1 is registered");
    assert_eq!(reports.len(), 1);
    let report = &reports[0];
    assert_eq!(report.id(), "e1");

    // Round-trip through JSON text, exactly like a tablegen consumer.
    let text = serde_json::to_string(&report.to_value()).expect("report serializes");
    let doc = serde_json::from_str(&text).expect("report JSON parses");
    let rows = doc
        .get("rows")
        .and_then(Value::as_array)
        .expect("rows array");
    assert_eq!(
        doc.get("cells").and_then(Value::as_u64),
        Some(rows.len() as u64)
    );
    assert!(!rows.is_empty());

    let mut seen = Vec::new();
    for row in rows {
        let k = row.get("k").and_then(Value::as_u64).expect("k") as u32;
        let f = row.get("f").and_then(Value::as_u64).expect("f") as u32;
        let closed = row
            .get("closed_form")
            .and_then(Value::as_f64)
            .expect("closed_form");
        let numeric = row
            .get("numeric_min")
            .and_then(Value::as_f64)
            .expect("numeric_min");
        let want = a_line(k, f).expect("searchable cell");
        assert!(
            (closed - want).abs() < TOL,
            "A({k},{f}): JSON row {closed} vs closed form {want}"
        );
        assert!(
            (numeric - want).abs() < 1e-6,
            "A({k},{f}): numeric column drifted"
        );
        seen.push(((k, f), closed));
    }
    // the hard-coded decimals survive the whole pipeline
    for &((k, f), want) in PINNED {
        let (_, got) = seen
            .iter()
            .find(|((sk, sf), _)| (*sk, *sf) == (k, f))
            .unwrap_or_else(|| panic!("pinned row ({k},{f}) missing"));
        assert!(
            (got - want).abs() < TOL,
            "pinned A({k},{f}) = {got}, want {want}"
        );
    }
}

#[test]
fn report_rows_are_identical_across_thread_counts() {
    let sequential = e1_theorem1::campaign(6, 1e3)
        .threads(Some(1))
        .run()
        .report();
    for threads in [2usize, 4, 16] {
        let parallel = e1_theorem1::campaign(6, 1e3)
            .threads(Some(threads))
            .run()
            .report();
        // byte-identical serialized rows: same cells, same order, same values
        let a = serde_json::to_string(&Value::Array(sequential.rows().to_vec())).unwrap();
        let b = serde_json::to_string(&Value::Array(parallel.rows().to_vec())).unwrap();
        assert_eq!(a, b, "rows diverged at {threads} threads");
    }
}

#[test]
fn every_registered_experiment_produces_parseable_json() {
    let cfg = Config {
        max_k: 4,
        threads: Some(1),
        // a small budget: this test sweeps every experiment incl. E11
        mc_samples: 2_000,
        ..Config::default()
    };
    for id in experiments::ALL {
        let reports = experiments::run_experiment(id, &cfg).expect(id);
        for report in &reports {
            let text = serde_json::to_string(&report.to_value()).expect("serializes");
            let doc = serde_json::from_str(&text)
                .unwrap_or_else(|e| panic!("{id} JSON does not parse: {e}"));
            let rows = doc.get("rows").and_then(Value::as_array).unwrap();
            assert!(!rows.is_empty(), "{id} report {} has no rows", report.id());
        }
    }
}
