//! Integration tests for the lower-bound machinery: standardization,
//! exact assignment and the potential function, run on *real* strategies
//! from the strategies crate (the unit tests inside `raysearch-cover` use
//! hand-built fleets).

use raysearch::bounds::{delta_growth, lambda_to_mu, mu_threshold, RayInstance};
use raysearch::cover::potential::{PotentialSeries, Setting};
use raysearch::cover::settings::OrcSetting;
use raysearch::cover::ExactAssigner;
use raysearch::strategies::{CyclicExponential, RayStrategy};

fn per_robot_intervals(
    strategy: &CyclicExponential,
    mu: f64,
    horizon: f64,
) -> Vec<Vec<raysearch::cover::settings::CoveredInterval>> {
    strategy
        .fleet_tours(horizon)
        .unwrap()
        .iter()
        .enumerate()
        .map(|(r, tour)| {
            let mut ivs =
                OrcSetting::covered_intervals(&OrcSetting::turns_from_tour(tour), mu).unwrap();
            for iv in &mut ivs {
                iv.robot = r;
            }
            ivs
        })
        .collect()
}

/// The optimal strategy admits an exact q-fold assignment at its own
/// lambda (slightly above, for slack), and the potential's mean step
/// ratio hovers at 1 — the quantitative signature of tightness.
#[test]
fn optimal_strategy_assignment_and_potential_at_threshold() {
    for (m, k, f) in [(2u32, 1u32, 0u32), (2, 3, 1), (3, 2, 0)] {
        let instance = RayInstance::new(m, k, f).unwrap();
        let q = instance.q();
        let mu_star = mu_threshold(k, q).unwrap();
        let mu = 1.04 * mu_star;
        let strategy = CyclicExponential::optimal(m, k, f).unwrap();
        let per_robot = per_robot_intervals(&strategy, mu, 4e4);
        let (assignment, stuck) = ExactAssigner::new(q as usize, mu)
            .unwrap()
            .assign_partial(&per_robot, 1e4)
            .unwrap();
        assert!(
            stuck.is_none(),
            "(m={m},k={k},f={f}): optimal strategy stuck above threshold at {stuck:?}"
        );
        let series = PotentialSeries::compute(&assignment, Setting::Orc { q }).unwrap();
        let report = series.growth_report(k as usize, q - k, mu).unwrap();
        assert!(
            report.satisfies_lemma5(1e-9),
            "(m={m},k={k},f={f}): min ratio {} below delta {}",
            report.min_step_ratio,
            report.theoretical_delta
        );
        assert!(
            (report.mean_step_ratio - 1.0).abs() < 0.3,
            "(m={m},k={k},f={f}): mean ratio {} far from 1",
            report.mean_step_ratio
        );
    }
}

/// Below the threshold the same machinery refuses: the assignment gets
/// stuck, and while it lives every potential step grows by at least the
/// Lemma 5 delta.
#[test]
fn sub_threshold_assignment_dies_with_growing_potential() {
    let (m, k, f) = (2u32, 3u32, 1u32);
    let q = m * (f + 1);
    let mu_star = mu_threshold(k, q).unwrap();
    let mu = 0.93 * mu_star;
    let delta = delta_growth(mu, q - k, k).unwrap();
    assert!(delta > 1.0);

    let strategy = CyclicExponential::optimal(m, k, f).unwrap();
    let per_robot = per_robot_intervals(&strategy, mu, 1e6);
    let (assignment, stuck) = ExactAssigner::new(q as usize, mu)
        .unwrap()
        .assign_partial(&per_robot, 1e5)
        .unwrap();
    assert!(stuck.is_some(), "sub-threshold cover must die");
    if let Ok(series) = PotentialSeries::compute(&assignment, Setting::Orc { q }) {
        let report = series.growth_report(k as usize, q - k, mu).unwrap();
        assert!(
            report.satisfies_lemma5(1e-9),
            "min ratio {} below delta {}",
            report.min_step_ratio,
            report.theoretical_delta
        );
    }
}

/// How far a sub-threshold cover can reach shrinks as lambda drops — the
/// quantitative shadow of "N(eps) grows as eps -> 0" in ineq. (12).
#[test]
fn stuck_frontier_moves_inward_as_lambda_drops() {
    let (m, k, f) = (2u32, 1u32, 0u32);
    let q = m * (f + 1);
    let strategy = CyclicExponential::optimal(m, k, f).unwrap();
    let mut last_frontier = f64::INFINITY;
    for factor in [0.995, 0.95, 0.85, 0.7] {
        let mu = factor * mu_threshold(k, q).unwrap();
        let per_robot = per_robot_intervals(&strategy, mu, 1e8);
        let (assignment, stuck) = ExactAssigner::new(q as usize, mu)
            .unwrap()
            .assign_partial(&per_robot, 1e7)
            .unwrap();
        assert!(stuck.is_some(), "factor {factor} should be sub-threshold");
        assert!(
            assignment.frontier <= last_frontier,
            "frontier {} did not shrink at factor {factor}",
            assignment.frontier
        );
        last_frontier = assignment.frontier;
    }
    // at 30% below the threshold the cover dies almost immediately
    assert!(last_frontier < 100.0);
}

/// Standardization interplay: the line view of the optimal strategy is
/// already standardized — canonicalize and drop_unfruitful are identities
/// on it.
#[test]
fn optimal_line_strategy_is_already_standard() {
    use raysearch::cover::standardize::{canonicalize, drop_unfruitful_pm};
    use raysearch::strategies::LineStrategy;

    let (k, f) = (3u32, 1u32);
    let lambda = raysearch::bounds::a_line(k, f).unwrap();
    let mu = lambda_to_mu(lambda * 1.01).unwrap();
    let strategy = CyclicExponential::optimal(2, k, f)
        .unwrap()
        .to_line()
        .unwrap();
    for itinerary in strategy.fleet_itineraries(1e4).unwrap() {
        let turns = itinerary.turns().to_vec();
        let canon = canonicalize(&turns).unwrap();
        assert_eq!(canon, turns, "canonicalize altered an optimal plan");
        let fruitful = drop_unfruitful_pm(&canon, mu).unwrap();
        assert_eq!(fruitful, turns, "optimal plan had unfruitful rounds");
    }
}
