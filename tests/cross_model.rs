//! Cross-model consistency: the symbolic evaluator (piecewise breakpoint
//! analysis in `raysearch-core`) against the discrete-event ground truth
//! (`raysearch-sim` engine + `raysearch-faults` adversary), hammered with
//! random strategies and random targets.

use proptest::prelude::*;
use raysearch::core::{LineEvaluator, RayEvaluator};
use raysearch::faults::CrashAdversary;
use raysearch::sim::{LinePoint, LineTrajectory, RayId, RayPoint, RayTrajectory, VisitEngine};
use raysearch::strategies::{CyclicExponential, LineStrategy, RandomGeometric, RayStrategy};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random geometric ray fleets: the symbolic per-point detection time
    /// equals the engine's (f+1)-st distinct-visit time at random targets.
    #[test]
    fn ray_detection_times_agree(
        seed in 0u64..1000,
        f in 0u32..2,
        ray in 0usize..3,
        x_scale in 1.0f64..400.0,
    ) {
        let (m, k) = (3u32, f + 2); // k > f always
        let strategy = RandomGeometric::new(m, k, f, seed, (1.2, 2.8)).unwrap();
        let tours = strategy.fleet_tours(2e3).unwrap();
        let evaluator = RayEvaluator::new(m as usize, f, 1.0, 1e3).unwrap();

        let engine = VisitEngine::new(
            tours.iter().map(RayTrajectory::compile).collect::<Vec<_>>(),
        )
        .unwrap();
        let adversary = CrashAdversary::new(f as usize);

        let x = x_scale;
        let symbolic = evaluator.detection_time(&tours, ray, x).unwrap();
        let point = RayPoint::new(RayId::new(ray, m as usize).unwrap(), x).unwrap();
        let truth = adversary
            .detection_time(&engine.schedule(point))
            .map(|t| t.as_f64());
        match (symbolic, truth) {
            (Some(a), Some(b)) => prop_assert!(
                (a - b).abs() < 1e-9 * b.max(1.0),
                "x={x} ray={ray}: symbolic {a} vs engine {b}"
            ),
            (a, b) => prop_assert!(
                a.is_none() && b.is_none(),
                "coverage disagreement at x={x} ray={ray}: {a:?} vs {b:?}"
            ),
        }
    }

    /// Optimal line fleets: same agreement on the line, both sides.
    #[test]
    fn line_detection_times_agree(
        kf in 0usize..4,
        sign in prop::bool::ANY,
        x_scale in 1.0f64..900.0,
    ) {
        let (k, f) = [(1u32, 0u32), (3, 1), (5, 2), (7, 3)][kf];
        let strategy = CyclicExponential::optimal(2, k, f).unwrap().to_line().unwrap();
        let fleet = strategy.fleet_itineraries(5e3).unwrap();
        let evaluator = LineEvaluator::new(f, 1.0, 2e3).unwrap();
        let engine = VisitEngine::new(
            fleet.iter().map(LineTrajectory::compile).collect::<Vec<_>>(),
        )
        .unwrap();
        let adversary = CrashAdversary::new(f as usize);

        let x = if sign { x_scale } else { -x_scale };
        let symbolic = evaluator.detection_time(&fleet, x).unwrap();
        let truth = adversary
            .detection_time(&engine.schedule(LinePoint::new(x).unwrap()))
            .map(|t| t.as_f64());
        match (symbolic, truth) {
            (Some(a), Some(b)) => prop_assert!(
                (a - b).abs() < 1e-9 * b.max(1.0),
                "x={x}: symbolic {a} vs engine {b}"
            ),
            (a, b) => prop_assert!(a.is_none() && b.is_none(), "{a:?} vs {b:?}"),
        }
    }

    /// The evaluator's reported supremum is an upper bound for the ratio
    /// at every concrete target (spot-checked against the engine).
    #[test]
    fn reported_sup_dominates_pointwise_ratios(
        seed in 0u64..200,
        x_scale in 1.0f64..90.0,
        ray in 0usize..2,
    ) {
        let (m, k, f) = (2u32, 2u32, 0u32);
        let strategy = RandomGeometric::new(m, k, f, seed, (1.3, 2.2)).unwrap();
        let tours = strategy.fleet_tours(2e3).unwrap();
        let evaluator = RayEvaluator::new(m as usize, f, 1.0, 100.0).unwrap();
        let report = evaluator.evaluate(&tours).unwrap();
        prop_assume!(report.is_covered());
        let x = x_scale;
        if let Some(t) = evaluator.detection_time(&tours, ray, x).unwrap() {
            prop_assert!(
                t / x <= report.ratio * (1.0 + 1e-12),
                "point ratio {} above reported sup {}",
                t / x,
                report.ratio
            );
        }
    }
}
