//! Integration tests for Theorem 6: m rays, and its relaxation chain
//! (m-ray search -> q-fold ORC cover -> fractional cover).

use raysearch::bounds::{a_rays, c_fractional, c_orc, lambda_to_mu, RayInstance, Regime};
use raysearch::core::verdict::verify_tightness;
use raysearch::core::RayEvaluator;
use raysearch::cover::settings::{merge_fleet_intervals, OrcSetting};
use raysearch::cover::CoverageProfile;
use raysearch::strategies::{CyclicExponential, RayStrategy};

/// All searchable (m, k, f) with m <= 5, k <= 7: measured == theory and
/// falsified just below, through the one-call verdict API.
#[test]
fn theorem6_tightness_grid() {
    for m in 2u32..=5 {
        for k in 1u32..=7 {
            for f in 0..k.min(3) {
                let instance = RayInstance::new(m, k, f).unwrap();
                if !matches!(instance.regime(), Regime::Searchable { .. }) {
                    continue;
                }
                let report = verify_tightness(m, k, f, 5e3, 0.02).unwrap();
                assert!(
                    (report.measured_upper - report.theory).abs() < 1e-2 * report.theory,
                    "(m={m},k={k},f={f}): measured {} vs theory {}",
                    report.measured_upper,
                    report.theory
                );
                assert!(
                    report.falsified_below,
                    "(m={m},k={k},f={f}): no witness below the bound"
                );
            }
        }
    }
}

/// The f = 0 case answers the old open question: k robots on m rays.
/// Check the explicit values for small (m, k) against Λ(m/k).
#[test]
fn open_question_f0_values() {
    for (m, k) in [(3u32, 2u32), (4, 3), (5, 4), (5, 2), (6, 5)] {
        let v = a_rays(m, k, 0).unwrap();
        let eta = f64::from(m) / f64::from(k);
        let explicit = 2.0 * (eta.powf(eta) / (eta - 1.0).powf(eta - 1.0)) + 1.0;
        assert!(
            (v - explicit).abs() < 1e-9,
            "(m={m},k={k}): {v} vs explicit {explicit}"
        );
    }
}

/// The ORC relaxation is faithful: the optimal m-ray strategy, with ray
/// labels discarded, q-fold covers [1, N] at lambda = A(m,k,f)·(1+eps)
/// and fails at lambda = A·(1−eps).
#[test]
fn orc_relaxation_two_sided() {
    let (m, k, f) = (3u32, 4u32, 1u32);
    let instance = RayInstance::new(m, k, f).unwrap();
    let q = instance.q() as usize;
    let theory = a_rays(m, k, f).unwrap();
    let strategy = CyclicExponential::optimal(m, k, f).unwrap();
    let fleet = strategy.fleet_tours(4e4).unwrap();

    for (factor, should_cover) in [(1.02, true), (0.98, false)] {
        let mu = lambda_to_mu(theory * factor).unwrap();
        let per_robot: Vec<_> = fleet
            .iter()
            .map(|t| OrcSetting::covered_intervals(&OrcSetting::turns_from_tour(t), mu).unwrap())
            .collect();
        let merged = merge_fleet_intervals(per_robot);
        let profile = CoverageProfile::build(&merged, 1.0, 1e4).unwrap();
        let witness = profile.first_undercovered(q);
        assert_eq!(
            witness.is_none(),
            should_cover,
            "factor {factor}: witness {witness:?}"
        );
    }
}

/// C(k, q) is monotone in the right ways: decreasing in k, increasing in
/// q, scale invariant, and consistent with the fractional C(η).
#[test]
fn orc_value_monotonicity_and_consistency() {
    for q in 3u32..=12 {
        for k in 1..q {
            let v = c_orc(k, q).unwrap();
            if k + 1 < q {
                assert!(
                    c_orc(k + 1, q).unwrap() < v,
                    "not decreasing in k at ({k},{q})"
                );
            }
            assert!(
                c_orc(k, q + 1).unwrap() > v,
                "not increasing in q at ({k},{q})"
            );
            let frac = c_fractional(f64::from(q) / f64::from(k)).unwrap();
            assert!((frac - v).abs() < 1e-9);
        }
    }
}

/// Sub-threshold death is universal, not specific to the optimal
/// strategy: seeded random strategies never q-fold cover below the bound.
#[test]
fn random_strategies_never_beat_the_bound() {
    use raysearch::strategies::RandomGeometric;
    let (m, k, f) = (3u32, 2u32, 0u32);
    let q = (m * (f + 1)) as usize;
    let theory = a_rays(m, k, f).unwrap();
    let mu = lambda_to_mu(0.97 * theory).unwrap();
    for seed in 0..40u64 {
        let strategy = RandomGeometric::new(m, k, f, seed, (1.1, 3.5)).unwrap();
        let fleet = strategy.fleet_tours(4e4).unwrap();
        let per_robot: Vec<_> = fleet
            .iter()
            .map(|t| OrcSetting::covered_intervals(&OrcSetting::turns_from_tour(t), mu).unwrap())
            .collect();
        let merged = merge_fleet_intervals(per_robot);
        let profile = CoverageProfile::build(&merged, 1.0, 1e4).unwrap();
        assert!(
            profile.first_undercovered(q).is_some(),
            "seed {seed}: a random strategy q-covered below the tight bound"
        );
    }
}

/// Perturbing the optimal strategy can only hurt: the measured ratio of a
/// jittered fleet is at least the optimum (up to horizon slack).
#[test]
fn perturbation_never_improves() {
    use raysearch::strategies::Perturbed;
    let (m, k, f) = (2u32, 3u32, 1u32);
    let theory = a_rays(m, k, f).unwrap();
    let base = CyclicExponential::optimal(m, k, f).unwrap();
    let evaluator = RayEvaluator::new(m as usize, f, 1.0, 5e3).unwrap();
    for seed in 0..10u64 {
        let jittered = Perturbed::new(base.clone(), 0.15, seed).unwrap();
        let fleet = jittered.fleet_tours(1e5).unwrap();
        let report = evaluator.evaluate(&fleet).unwrap();
        let measured = report.ratio;
        assert!(
            measured >= theory * (1.0 - 6e-3),
            "seed {seed}: jittered ratio {measured} beats theory {theory}"
        );
    }
}

/// The paper's remark on the distance-optimal shape, measured: the
/// dedicated-plus-sweeper strategy (Kao–Ma–Sipser–Yin structure) is
/// strictly worse in time than the cyclic strategy on every nontrivial
/// instance, by exactly the single-searcher constant of its sweeper.
#[test]
fn dedicated_shape_measured_time_ratio() {
    use raysearch::strategies::DedicatedPlusSweeper;
    for (m, k) in [(3u32, 2u32), (4, 3)] {
        let dedicated = DedicatedPlusSweeper::new(m, k).unwrap();
        let fleet = dedicated.fleet_tours(1e5).unwrap();
        let measured = RayEvaluator::new(m as usize, 0, 1.0, 1e4)
            .unwrap()
            .evaluate(&fleet)
            .unwrap()
            .ratio;
        let expected = dedicated.theoretical_time_ratio().unwrap();
        assert!(
            (measured - expected).abs() < 1e-2 * expected,
            "(m={m},k={k}): measured {measured} vs expected {expected}"
        );
        let optimal = a_rays(m, k, 0).unwrap();
        assert!(
            measured > optimal + 0.5,
            "(m={m},k={k}): not worse than optimal"
        );
    }
}

/// The strategy-independent impossibility certificate dominates every
/// measured witness and blows up towards the bound.
#[test]
fn impossibility_certificate_is_consistent() {
    use raysearch::cover::impossibility_horizon_log;
    let bound = c_orc(1, 2).unwrap();
    let ln_n_far = impossibility_horizon_log(1, 2, 0.8 * bound).unwrap();
    let ln_n_near = impossibility_horizon_log(1, 2, 0.999 * bound).unwrap();
    assert!(ln_n_near > ln_n_far);
    // measured witness at 0.999·9 is ~128 (E7); the certificate is larger
    assert!(ln_n_far > (128.0f64).ln());
}
