//! Tier-1 smoke test: the closed forms of `raysearch-bounds` pinned
//! against independently known literature constants, so a regression in
//! `closed_form.rs` (or in `Λ`'s implementation) is caught immediately.

use raysearch::bounds::literature::{
    byzantine_lower_bound, single_robot_m_rays, COW_PATH_RATIO, PRIOR_BYZANTINE_LB_3_1,
};
use raysearch::bounds::{a_line, a_rays, c_fractional, c_orc, lambda_big};

const TOL: f64 = 1e-9;

#[test]
fn cow_path_constant_from_every_formula() {
    // The classical 9 must fall out of Theorem 1 (k=1, f=0), of the
    // rho = 2 boundary cases, of Λ(2), and of the single-robot 2-ray
    // literature constant — all independently.
    assert!((a_line(1, 0).unwrap() - COW_PATH_RATIO).abs() < TOL);
    assert!((a_line(2, 1).unwrap() - COW_PATH_RATIO).abs() < TOL);
    assert!((lambda_big(2.0).unwrap() - COW_PATH_RATIO).abs() < TOL);
    assert!((single_robot_m_rays(2).unwrap() - COW_PATH_RATIO).abs() < TOL);
    assert!((a_rays(2, 1, 0).unwrap() - COW_PATH_RATIO).abs() < TOL);
}

#[test]
fn single_robot_rays_matches_theorem6_f0() {
    // Theorem 6 with k = 1, f = 0 must reduce to the classical
    // Baeza-Yates–Culberson–Rawlins m-ray constants.
    for m in 2..=8 {
        let theorem6 = a_rays(m, 1, 0).unwrap();
        let classical = single_robot_m_rays(m).unwrap();
        assert!(
            (theorem6 - classical).abs() < TOL,
            "m = {m}: A(m,1,0) = {theorem6} vs literature {classical}"
        );
    }
    // spot value: m = 3 gives 1 + 2*27/4 = 14.5
    assert!((single_robot_m_rays(3).unwrap() - 14.5).abs() < TOL);
}

#[test]
fn small_kf_closed_forms_pinned() {
    // Hard-coded decimals (computed once from Λ(ρ) = 2ρ^ρ/(ρ−1)^(ρ−1)+1,
    // ρ = 2(f+1)/k) so a silent change in the formula cannot pass.
    let pinned = [
        ((3u32, 1u32), 5.233_069_471_915_199),
        ((4, 2), 6.196_152_422_706_631),
        ((5, 2), 4.434_325_794_652_613),
        ((5, 3), 6.764_096_164_354_617),
        ((6, 4), 7.140_052_497_733_978),
    ];
    for ((k, f), want) in pinned {
        let got = a_line(k, f).unwrap();
        assert!(
            (got - want).abs() < 1e-10,
            "A({k},{f}) = {got}, pinned {want}"
        );
    }
}

#[test]
fn byzantine_bound_improves_on_prior_literature() {
    // The paper's headline comparison: B(3,1) >= A(3,1) = 5.2330...,
    // improving the prior 3.93 of Czyzowitz et al. ISAAC 2016.
    let new = byzantine_lower_bound(3, 1).unwrap();
    assert!((new - a_line(3, 1).unwrap()).abs() < TOL);
    assert!(new > PRIOR_BYZANTINE_LB_3_1 + 1.3);
}

#[test]
fn relaxations_agree_with_lambda() {
    // Eq. (10)/(11): both relaxations evaluate Λ at the same argument as
    // the integral closed forms.
    for (k, q) in [(1u32, 2u32), (2, 3), (3, 5), (4, 7)] {
        let eta = f64::from(q) / f64::from(k);
        let lam = lambda_big(eta).unwrap();
        assert!((c_orc(k, q).unwrap() - lam).abs() < TOL);
        assert!((c_fractional(eta).unwrap() - lam).abs() < TOL);
    }
}
