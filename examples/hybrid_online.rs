//! Hybrid online algorithms — the Kao–Ma–Sipser–Yin connection from the
//! paper's Section 3.
//!
//! A problem `Q` can be solved by one of `m` basic algorithms, but in the
//! worst case only one of them halts and we do not know which. We have
//! `k` workers, each with a single memory area; a worker can run any
//! basic algorithm, but assigning a new algorithm to an area wipes it, so
//! the algorithm restarts from scratch (and abandoning a run means the
//! area is rewound at unit cost — the "robot walks back to the origin").
//! `Q` is solved the moment some worker has run the lucky algorithm for
//! its full (unknown) runtime `x` in one uninterrupted stretch.
//!
//! This is *exactly* `k`-robot search on `m` rays: algorithm `i` is ray
//! `i`, a run of length `t` is an excursion to distance `t`, and the
//! wall-clock competitive ratio against the omniscient scheduler (which
//! runs the right algorithm immediately: cost `x`) is `A(m, k, 0)` —
//! the `f = 0` case of Theorem 6, answering the question posed by
//! Kao–Ma–Sipser–Yin for time (they resolved the total-work measure).
//!
//! ```text
//! cargo run --example hybrid_online
//! ```

use raysearch::bounds::a_rays;
use raysearch::strategies::{CyclicExponential, RayStrategy};

/// Simulates the hybrid scheduler: returns the wall-clock time at which
/// the lucky algorithm (index `lucky`, runtime `x`) is solved.
///
/// Worker `r` follows its tour: each excursion on ray `i` with turn `t`
/// is a fresh run of algorithm `i` for `t` steps (then rewinds, costing
/// another `t`). The run solves `Q` if `i == lucky` and `t >= x`, at
/// elapsed in-run time `x`.
fn solve_time(tours: &[raysearch::sim::TourItinerary], lucky: usize, x: f64) -> Option<f64> {
    let mut best: Option<f64> = None;
    for tour in tours {
        let mut clock = 0.0;
        for e in tour.excursions() {
            if e.ray.index() == lucky && e.turn >= x {
                let t = clock + x;
                best = Some(best.map_or(t, |b: f64| b.min(t)));
                break; // later runs on this worker are slower
            }
            clock += 2.0 * e.turn; // run + rewind
        }
    }
    best
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("hybrid online algorithms: k workers hedging over m candidate algorithms\n");
    println!("  m   k    A(m,k,0)    measured sup");
    for (m, k) in [(2u32, 1u32), (3, 1), (3, 2), (4, 3), (5, 3)] {
        let theory = a_rays(m, k, 0)?;
        let strategy = CyclicExponential::optimal(m, k, 0)?;
        let tours = strategy.fleet_tours(1e5)?;

        // adversarial runtimes: just past every scheduled run length
        let mut worst: f64 = 0.0;
        for tour in &tours {
            for e in tour.excursions() {
                let x = e.turn * (1.0 + 1e-9);
                if !(1.0..=1e4).contains(&x) {
                    continue;
                }
                let t =
                    solve_time(&tours, e.ray.index(), x).expect("strategy hedges every algorithm");
                worst = worst.max(t / x);
            }
        }
        println!("  {m}   {k}    {theory:>8.4}    {worst:>8.4}");
        assert!(
            worst <= theory + 1e-6,
            "hybrid scheduler beats the lower bound?!"
        );
        assert!(
            worst >= theory - 0.05 * theory,
            "sweep missed the worst case"
        );
    }
    println!(
        "\nthe measured suprema match A(m,k,0) — the f = 0 case of Theorem 6, \
         resolving the time version of the hybrid-algorithm question."
    );
    Ok(())
}
