//! Monte-Carlo average case: what do the paper's optimal fleets achieve
//! when the faults are *random* instead of adversarial?
//!
//! ```text
//! cargo run --release --example montecarlo_average_case
//! ```
//!
//! Every number below is bit-reproducible: sample `i` of seed `s` draws
//! from its own counter-based `SplitMix64::keyed(s, i)` stream, so
//! thread counts, batch scheduling and cache hits can never change a
//! digit.

use raysearch::mc::{estimate, FaultSampler, McConfig, Scenario, TargetSampler};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("raysearch Monte-Carlo — average case vs the exact worst case\n");

    let (m, k, f) = (2u32, 3u32, 1u32);
    let horizon = 1e4;
    let targets = TargetSampler::LogUniform {
        lo: 1.0,
        hi: horizon,
    };
    let cfg = McConfig::with_seed(2018, 100_000);

    // ------------------------------------------------------------------
    // 1. Four fault models over the same optimal fleet.
    // ------------------------------------------------------------------
    println!("instance (m={m}, k={k}, f={f}), 100k samples, log-uniform targets:");
    let models: [(&str, FaultSampler); 4] = [
        ("exact crash adversary", FaultSampler::WorstCaseSubset { f }),
        ("uniform random f-subset", FaultSampler::UniformSubset { f }),
        ("iid crashes, p = 0.1", FaultSampler::IidCrash { p: 0.1 }),
        (
            "iid Byzantine mix, p = 0.1",
            FaultSampler::ByzantineMix { p: 0.1, budget: f },
        ),
    ];
    for (label, faults) in models {
        let scenario = Scenario::new(m, k, f, horizon, faults, targets.clone())?;
        let report = estimate(&scenario, &cfg)?;
        println!(
            "  {label:>27}:  mean {:.4}  p95 {:.4}  max {:.4}  (Λ = {:.4}, undetected {})",
            report.mean, report.p95, report.max, report.closed_form, report.undetected
        );
    }

    // ------------------------------------------------------------------
    // 2. The compare_to_closed_form contrast, spelled out.
    // ------------------------------------------------------------------
    let scenario = Scenario::new(
        m,
        k,
        f,
        horizon,
        FaultSampler::UniformSubset { f },
        targets.clone(),
    )?;
    let report = estimate(&scenario, &cfg)?;
    let cmp = report.comparison();
    println!("\nuniform-subset faults vs Theorem 1:");
    println!("  exact worst case Λ(q/k)   = {:.6}", cmp.closed_form);
    println!("  empirical mean ratio      = {:.6}", cmp.mean);
    println!("  mean slack (Λ − mean)     = {:.6}", cmp.mean_slack);
    println!("  within worst case         = {}", cmp.within_worst_case);

    // ------------------------------------------------------------------
    // 3. Replay the adversary's own candidate grid: the empirical max
    //    climbs to the exact supremum.
    // ------------------------------------------------------------------
    let grid = scenario.adversarial_grid()?;
    let stress = Scenario::new(m, k, f, horizon, FaultSampler::WorstCaseSubset { f }, grid)?;
    let stressed = estimate(&stress, &cfg)?;
    println!("\nadversarial-grid replay under the exact adversary:");
    println!(
        "  empirical max {:.6} vs Λ {:.6} ({:.4}% of the supremum)",
        stressed.max,
        stressed.closed_form,
        100.0 * stressed.max / stressed.closed_form
    );

    // ------------------------------------------------------------------
    // 4. Determinism: same seed, different thread counts, same bits.
    // ------------------------------------------------------------------
    let sequential = estimate(
        &scenario,
        &McConfig {
            threads: Some(1),
            ..cfg
        },
    )?;
    let sharded = estimate(
        &scenario,
        &McConfig {
            threads: Some(8),
            ..cfg
        },
    )?;
    println!(
        "\n1 thread vs 8 threads bit-identical: {}",
        sequential == sharded
    );

    Ok(())
}
