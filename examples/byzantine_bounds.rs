//! Byzantine search: how the crash lower bound lifts, and what a sound
//! verifier can still achieve.
//!
//! Byzantine robots may lie about finding the target, not just stay
//! silent. Two facts from the paper:
//!
//! * silence is a Byzantine option, so `B(k,f) ≥ A(k,f)` — this raises
//!   the best known `B(3,1)` lower bound from 3.93 (ISAAC'16) to
//!   `A(3,1) ≈ 5.2326`;
//! * waiting for `f+1` *corroborating claims* is never fooled; its price
//!   is tolerating up to `f` silent faulty first-visitors too, i.e. it
//!   behaves like crash search with `2f` faults.
//!
//! ```text
//! cargo run --example byzantine_bounds
//! ```

use raysearch::bounds::a_line;
use raysearch::bounds::literature::{byzantine_table, PRIOR_BYZANTINE_LB_3_1};
use raysearch::faults::{
    ByzantineBehavior, ByzantineSimulation, ConservativeVerifier, FaultAssignment, FaultKind,
};
use raysearch::sim::{LinePoint, LineTrajectory, RobotId, VisitEngine};
use raysearch::strategies::{CyclicExponential, LineStrategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // 1. The lower-bound lift.
    // ------------------------------------------------------------------
    println!("Byzantine lower bounds implied by Theorem 1 (B(k,f) >= A(k,f)):\n");
    println!("  k   f    prior LB    new LB");
    for row in byzantine_table(6)? {
        let prior = row
            .prior_lower_bound
            .map(|v| format!("{v:>7.4}"))
            .unwrap_or_else(|| "      -".to_owned());
        println!(
            "  {}   {}    {prior}    {:>7.4}",
            row.k, row.f, row.new_lower_bound
        );
    }
    let b31 = a_line(3, 1)?;
    println!(
        "\nB(3,1): {PRIOR_BYZANTINE_LB_3_1} (ISAAC'16)  ->  {b31:.4}  \
         (+{:.0}%)",
        100.0 * (b31 - PRIOR_BYZANTINE_LB_3_1) / PRIOR_BYZANTINE_LB_3_1
    );

    // ------------------------------------------------------------------
    // 2. The conservative verifier in action: k = 3, f = 1 Byzantine.
    //    Run the crash-optimal strategy for f' = 2f = 2 so that 2f+1 = 3
    //    distinct visits arrive in time, and let a liar plant decoys.
    // ------------------------------------------------------------------
    let (k, f) = (3u32, 1u32);
    let strategy = CyclicExponential::optimal(2, k, 2 * f)?.to_line()?;
    let fleet: Vec<LineTrajectory> = strategy
        .fleet_itineraries(1e4)?
        .iter()
        .map(LineTrajectory::compile)
        .collect();
    let upper_guarantee = a_line(k, 2 * f)?;

    println!(
        "\nconservative verification, k={k}, f={f} Byzantine \
         (strategy tuned for {} visits):",
        2 * f + 1
    );
    println!("  target      confirmed at      ratio   (guarantee {upper_guarantee:.4})");

    let scenarios: [(f64, usize); 4] = [(3.0, 0), (-20.0, 2), (117.0, 1), (-512.0, 2)];
    for &(target, liar) in &scenarios {
        let engine = VisitEngine::new(fleet.clone())?;
        let faults = FaultAssignment::new(k as usize, FaultKind::Byzantine, [RobotId(liar)])?;
        let decoys = vec![
            LinePoint::new(target.abs() * 0.4)?,
            LinePoint::new(-target.abs() * 0.7)?,
        ];
        let sim = ByzantineSimulation::new(
            engine,
            LinePoint::new(target)?,
            decoys,
            faults,
            ByzantineBehavior::LieAtDecoys,
        )?;
        let claims = sim.run();
        let verdict = ConservativeVerifier::new(f as usize)
            .decide(&claims)
            .expect("enough honest corroboration");
        assert_eq!(verdict.point_index, 0, "the verifier was fooled!");
        let ratio = verdict.time.as_f64() / target.abs();
        println!(
            "  {target:>8.1}    {:>12.3}    {ratio:>7.4}",
            verdict.time.as_f64()
        );
        assert!(ratio <= upper_guarantee + 1e-6);
    }

    println!(
        "\nno decoy was ever confirmed; every target was certified within \
         A(k,2f)·|x| — the gap between the lower bound {:.4} and the \
         conservative upper bound {:.4} is the open Byzantine band.",
        a_line(k, f)?,
        upper_guarantee
    );
    Ok(())
}
