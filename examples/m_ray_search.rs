//! Searching m rays with a faulty fleet: the Theorem 6 setting, plus the
//! α-ablation showing the optimal base is genuinely optimal.
//!
//! ```text
//! cargo run --example m_ray_search
//! ```

use raysearch::bounds::{a_rays, cyclic_ratio, optimal_alpha, RayInstance};
use raysearch::core::RayEvaluator;
use raysearch::strategies::{CyclicExponential, RayStrategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (m, k, f) = (3u32, 4u32, 1u32);
    let instance = RayInstance::new(m, k, f)?;
    let q = instance.q();
    println!(
        "m = {m} rays, k = {k} robots, f = {f} faulty  =>  q = m(f+1) = {q}, eta = {:.4}",
        instance.eta()
    );
    println!("A(m,k,f) = {:.6}\n", a_rays(m, k, f)?);

    // ------------------------------------------------------------------
    // Sweep the geometric base alpha around the optimum: the measured
    // ratio traces 2·alpha^q/(alpha^k - 1) + 1 with its minimum at
    // alpha* = (q/(q-k))^(1/k).
    // ------------------------------------------------------------------
    let astar = optimal_alpha(q, k)?;
    println!("alpha sweep (optimal alpha* = {astar:.6}):");
    println!("  alpha      formula     measured");
    let evaluator = RayEvaluator::new(m as usize, f, 1.0, 1e4)?;
    let mut best = (f64::INFINITY, 0.0);
    for step in -3i32..=3 {
        // scale relative to (alpha* - 1) so every swept base stays > 1
        let alpha = 1.0 + (astar - 1.0) * 1.3f64.powi(step);
        let strategy = CyclicExponential::with_alpha(m, k, f, alpha)?;
        let fleet = strategy.fleet_tours(1e5)?;
        let measured = evaluator.evaluate(&fleet)?.ratio;
        let formula = cyclic_ratio(alpha, q, k)?;
        println!("  {alpha:.4}    {formula:>8.4}    {measured:>8.4}");
        if measured < best.0 {
            best = (measured, alpha);
        }
        assert!(
            (measured - formula).abs() < 1e-2 * formula,
            "measured ratio disagrees with the appendix formula"
        );
    }
    println!(
        "\nbest measured base: {:.4} (optimal {:.4}); minimum value {:.6} = A(m,k,f)",
        best.1,
        astar,
        a_rays(m, k, f)?
    );
    assert!((best.1 - astar).abs() < 0.2 * astar);

    // ------------------------------------------------------------------
    // Where the adversary hides: the worst target sits just past a
    // turning point on some ray.
    // ------------------------------------------------------------------
    let strategy = CyclicExponential::optimal(m, k, f)?;
    let fleet = strategy.fleet_tours(1e5)?;
    let report = evaluator.evaluate(&fleet)?;
    let w = report.worst.expect("covered");
    println!(
        "\nworst-case target: just past distance {:.4} on ray {}, detected at {:.4} \
         (ratio {:.6})",
        w.x, w.ray, w.detection_limit, report.ratio
    );
    Ok(())
}
