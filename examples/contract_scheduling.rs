//! Contract algorithms on k processors — the Bernstein–Finkelstein–
//! Zilberstein connection from the paper's Section 3.
//!
//! A *contract algorithm* must be given its runtime in advance; stopping
//! it early yields nothing. A scheduler runs contracts of increasing
//! lengths for `m` problems on `k` processors; interrupted at time `T`
//! and queried on problem `i`, it answers with the longest contract for
//! `i` that has *completed*. The *acceleration ratio* is the worst-case
//! `T / (answered contract length)`.
//!
//! Interpreting each problem as a ray turns schedules into robot tours,
//! and the optimal acceleration ratio for `(m, k)` is the paper's master
//! expression at `q = m + k`:
//!
//! ```text
//! theta(m, k) = mu(m+k, k) = ((m+k)/k) · ((m+k)/m)^(m/k)
//! ```
//!
//! (classically 4 for one processor and one problem — the doubling
//! schedule). This example builds the geometric schedule, simulates
//! adversarial interruptions, and compares the measured ratio with the
//! closed form.
//!
//! ```text
//! cargo run --example contract_scheduling
//! ```

use raysearch::bounds::mu_threshold;

/// One completed contract: for which problem, how long, and when it
/// finished.
#[derive(Debug, Clone, Copy)]
struct Completed {
    problem: usize,
    length: f64,
    finish: f64,
}

/// Builds the geometric schedule for processor `r`: contracts of length
/// `alpha^(k·n + m·r)` cycling over problems, and returns completions up
/// to `horizon` wall-clock time.
fn schedule_processor(m: usize, k: usize, r: usize, alpha: f64, horizon: f64) -> Vec<Completed> {
    let mut out = Vec::new();
    let mut clock = 0.0;
    // warm-up start as in the search strategy: n from 1-2m
    let mut n = 1 - 2 * m as i64;
    loop {
        let expo = k as f64 * n as f64 + m as f64 * (r as f64 + 1.0);
        let length = (expo * alpha.ln()).exp();
        clock += length;
        if clock > horizon {
            return out;
        }
        out.push(Completed {
            problem: n.rem_euclid(m as i64) as usize,
            length,
            finish: clock,
        });
        n += 1;
    }
}

/// Measures the acceleration ratio over adversarial interruptions: just
/// before each completion, query that completion's problem.
fn measured_acceleration(completions: &mut [Completed], m: usize, settle: f64) -> f64 {
    completions.sort_by(|a, b| a.finish.total_cmp(&b.finish));
    let mut best_done = vec![0.0f64; m];
    let mut worst: f64 = 0.0;
    for c in completions.iter() {
        // interrupt immediately before c completes and ask for c.problem
        if c.finish > settle && best_done[c.problem] > 0.0 {
            worst = worst.max(c.finish / best_done[c.problem]);
        }
        best_done[c.problem] = best_done[c.problem].max(c.length);
    }
    worst
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("contract scheduling: measured vs optimal acceleration ratio\n");
    println!("  m   k    theta (theory)   measured");
    for (m, k) in [(1u32, 1u32), (2, 1), (3, 1), (1, 2), (3, 2), (4, 3)] {
        let q = m + k;
        let theory = mu_threshold(k, q)?;
        // the optimal geometric base: alpha^k = (m+k)/m
        let alpha = (f64::from(q) / f64::from(m)).powf(1.0 / f64::from(k));
        let horizon = 1e7;
        let mut completions: Vec<Completed> = (0..k as usize)
            .flat_map(|r| schedule_processor(m as usize, k as usize, r, alpha, horizon))
            .collect();
        let measured = measured_acceleration(&mut completions, m as usize, horizon / 100.0);
        println!("  {m}   {k}    {theory:>12.6}    {measured:>9.6}");
        assert!(
            measured <= theory * (1.0 + 1e-6),
            "measured acceleration exceeds the optimum"
        );
        assert!(
            measured >= theory * (1.0 - 1e-2),
            "schedule does not realize the optimal ratio"
        );
    }
    println!("\nclassic sanity check: one processor, one problem  =>  theta = 4 (doubling).");
    Ok(())
}
