//! Faulty line search, end to end: hide a target, assign crash faults
//! adversarially, and watch the fleet confirm the target within
//! `A(k,f)·|x|` — while any cheaper schedule provably fails.
//!
//! ```text
//! cargo run --example faulty_line_search
//! ```

use raysearch::bounds::a_line;
use raysearch::faults::CrashAdversary;
use raysearch::sim::{LinePoint, LineTrajectory, VisitEngine};
use raysearch::strategies::{CyclicExponential, LineStrategy, ReplicatedDoubling};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (k, f) = (3u32, 1u32);
    let lambda = a_line(k, f)?;
    println!("k = {k} robots, f = {f} crash-faulty; A(k,f) = {lambda:.6}\n");

    // Build the optimal fleet and compile it.
    let strategy = CyclicExponential::optimal(2, k, f)?.to_line()?;
    let tracks: Vec<LineTrajectory> = strategy
        .fleet_itineraries(1e5)?
        .iter()
        .map(LineTrajectory::compile)
        .collect();
    let engine = VisitEngine::new(tracks)?;
    let adversary = CrashAdversary::new(f as usize);

    println!("target x      detection t    t/|x|     faulty robots (adversary's pick)");
    for &x in &[1.0, -2.5, 17.0, -444.0, 9_999.0] {
        let point = LinePoint::new(x)?;
        let schedule = engine.schedule(point);
        let t = adversary
            .detection_time(&schedule)
            .expect("fleet covers the target")
            .as_f64();
        let assignment = adversary.worst_assignment(&schedule, k as usize)?;
        let culprits: Vec<String> = assignment.faulty_robots().map(|r| format!("{r}")).collect();
        println!(
            "{x:>9.1}    {t:>10.3}    {:>6.4}    {}",
            t / x.abs(),
            culprits.join(", ")
        );
        assert!(t / x.abs() <= lambda + 1e-9, "ratio bound violated");
    }

    // Compare with the replicated-doubling baseline: 9-competitive for
    // any f < k, but never better.
    let baseline = ReplicatedDoubling::new(k)?;
    let tracks: Vec<LineTrajectory> = baseline
        .fleet_itineraries(1e5)?
        .iter()
        .map(LineTrajectory::compile)
        .collect();
    let engine = VisitEngine::new(tracks)?;
    let mut worst = 0.0f64;
    for &x in &[1.0, -2.5, 17.0, -444.0, 5_001.0] {
        let schedule = engine.schedule(LinePoint::new(x)?);
        let t = adversary.detection_time(&schedule).unwrap().as_f64();
        worst = worst.max(t / x.abs());
    }
    println!(
        "\nreplicated-doubling baseline worst ratio on the same targets: {worst:.4} \
         (bounded by 9)"
    );
    println!(
        "optimal strategy wins by {:.1}% in the worst case.",
        100.0 * (9.0 - lambda) / 9.0
    );
    Ok(())
}
