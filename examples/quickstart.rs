//! Quickstart: compute the paper's bounds, run the optimal strategy, and
//! watch theory and measurement agree.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use raysearch::bounds::{LineInstance, Regime};
use raysearch::core::{LineEvaluator, RayEvaluator};
use raysearch::strategies::{CyclicExponential, LineStrategy, RayStrategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("raysearch quickstart — Kupavskii & Welzl, PODC 2018\n");

    // ------------------------------------------------------------------
    // 1. The closed form: A(k, f) for k robots, f of them crash-faulty.
    // ------------------------------------------------------------------
    println!("Theorem 1 — optimal ratios A(k, f) on the line:");
    for (k, f) in [(1u32, 0u32), (2, 1), (3, 1), (4, 2), (5, 2), (6, 3)] {
        let instance = LineInstance::new(k, f)?;
        match instance.regime() {
            Regime::Searchable { ratio } => {
                println!(
                    "  k={k}, f={f}:  rho = {:.4}  A = {ratio:.6}",
                    instance.rho()
                );
            }
            Regime::Trivial => println!("  k={k}, f={f}:  trivial (ratio 1)"),
            Regime::Impossible => println!("  k={k}, f={f}:  impossible"),
        }
    }

    // ------------------------------------------------------------------
    // 2. Run the optimal strategy on the line and measure its ratio
    //    exactly (no sampling: the evaluator enumerates breakpoints).
    // ------------------------------------------------------------------
    let (k, f) = (3u32, 1u32);
    let strategy = CyclicExponential::optimal(2, k, f)?.to_line()?;
    let fleet = strategy.fleet_itineraries(1e6)?;
    let report = LineEvaluator::new(f, 1.0, 1e5)?.evaluate(&fleet)?;
    let theory = LineInstance::new(k, f)?
        .regime()
        .ratio()
        .expect("searchable");
    println!("\nOptimal strategy, k={k}, f={f}:");
    println!("  theory   A(k,f)    = {theory:.9}");
    println!("  measured sup t/x   = {:.9}", report.ratio);
    let worst = report.worst.expect("covered");
    println!(
        "  worst target: just past x = {:.3} on the {} side",
        worst.x,
        if worst.ray == 0 {
            "positive"
        } else {
            "negative"
        }
    );
    assert!((report.ratio - theory).abs() < 1e-3);

    // ------------------------------------------------------------------
    // 3. The m-ray generalization (Theorem 6), f = 0: the question open
    //    since Baeza-Yates et al., Kao et al. and Bernstein et al.
    // ------------------------------------------------------------------
    println!("\nTheorem 6 — parallel search on m rays (f = 0):");
    for (m, k) in [(3u32, 1u32), (3, 2), (4, 3), (5, 2)] {
        let strategy = CyclicExponential::optimal(m, k, 0)?;
        let fleet = strategy.fleet_tours(1e6)?;
        let measured = RayEvaluator::new(m as usize, 0, 1.0, 1e4)?
            .evaluate(&fleet)?
            .ratio;
        let theory = raysearch::bounds::a_rays(m, k, 0)?;
        println!(
            "  m={m}, k={k}:  A = {theory:.6}   measured = {measured:.6}   alpha* = {:.6}",
            strategy.alpha()
        );
        assert!((measured - theory).abs() < 1e-2);
    }

    println!("\nAll measurements match the paper's closed forms.");
    Ok(())
}
